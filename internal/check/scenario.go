package check

import (
	"fmt"
	"math/rand"
	"time"

	"rodsp/internal/engine"
	"rodsp/internal/placement"
	"rodsp/internal/query"
	"rodsp/internal/trace"
)

// Class partitions scenarios by how much of the ledger can be asserted.
type Class int

const (
	// Strict scenarios keep every node alive, so the conservation ledger
	// holds exactly (up to the sever-fault write slack).
	Strict Class = iota
	// KillNode scenarios kill a node mid-episode: its counters become
	// unreachable and tuples flushed into its sockets are unaccounted, so
	// only the survivors' outbox identities and liveness are asserted.
	KillNode
	// Controller scenarios drive a flash-crowd + diurnal-wave workload with
	// the elastic placement controller closed over the cluster, and assert
	// that its autonomous migrations keep the conservation ledger at
	// residual 0 — and fire *before* the overload onset (see controller.go).
	Controller
	// Sharded scenarios drive a hot operator whose standalone load exceeds
	// one node's capacity through a keyed shard group, comparing the
	// unsharded, uniform-hash and skew-aware arms (see shard.go).
	Sharded
	// CorrSpike scenarios ramp two streams together — the correlated load
	// variation ROD's rate-space reasoning is built for — and hold the
	// strict conservation ledger across the simultaneous spike.
	CorrSpike
	// Recover scenarios kill an interior node mid-episode and restart it
	// from its WAL directory (see recover.go): the ledger must close at
	// residual 0 with zero slack ACROSS the crash — retained-until-ack
	// outboxes cover tuples in flight to the victim, WAL replay covers
	// tuples the victim admitted but had not finished, and the sink dedup
	// filter proves no duplicate delivery survived either mechanism.
	Recover
)

func (c Class) String() string {
	switch c {
	case KillNode:
		return "kill"
	case Controller:
		return "controller"
	case Sharded:
		return "sharded"
	case CorrSpike:
		return "corr-spike"
	case Recover:
		return "recover"
	}
	return "strict"
}

// FaultKind enumerates scheduled chaos operations.
type FaultKind int

const (
	FaultSever FaultKind = iota
	FaultDrop
	FaultDelay
	FaultHeal
	FaultMigrate
	FaultKill
)

func (k FaultKind) String() string {
	switch k {
	case FaultSever:
		return "sever"
	case FaultDrop:
		return "drop"
	case FaultDelay:
		return "delay"
	case FaultHeal:
		return "heal"
	case FaultMigrate:
		return "migrate"
	case FaultKill:
		return "kill"
	}
	return "?"
}

// FaultOp is one timed chaos operation within an episode.
type FaultOp struct {
	At   time.Duration // offset from episode start
	Kind FaultKind

	Node int // acting node: link-fault source, kill target
	Peer int // link-fault destination node

	Op    int           // migrated operator (FaultMigrate)
	To    int           // migration destination node
	Stall time.Duration // state-transfer stall charged to both homes

	Delay time.Duration // injected flush delay (FaultDelay)
}

// Scenario is one seeded conformance episode: a unit-multiplicity query
// graph (selectivity-1 chains, one consumer per stream — the shape under
// which tuple conservation is exact), a placement that forces cross-node
// hops, wall-clock traces, data-plane knobs, and a chaos schedule.
type Scenario struct {
	Seed  int64
	Class Class
	Nodes int

	Graph  *query.Graph
	Plan   *placement.Plan // initial placement; episodes copy before mutating
	Caps   []float64
	Traces []*trace.Trace // per input stream, wall-clock tuples/second
	Wall   time.Duration  // source drive time

	Config        engine.NodeConfig
	LegacySources bool // drive sources over per-tuple legacy wire frames

	Schedule []FaultOp
	Severs   int // sever faults in Schedule (ledger slack derives from this)

	// Recover-class crash plan (see GenerateRecover): the victim node to
	// kill, when to kill it, and how long it stays down before the restart.
	Victim   int
	KillAt   time.Duration
	Downtime time.Duration
}

// severWriteSlack bounds how many tuples one sever fault can double-count:
// a failed flush is counted dropped although the peer may have received the
// run, and one run is at most the outbox batch bound (512) plus headroom
// for a concurrently broken batched source write.
const severWriteSlack = 1024

// Slack is the allowed negative ledger residual for this scenario.
func (s *Scenario) Slack() int64 { return int64(s.Severs) * severWriteSlack }

// Generate builds the deterministic scenario for (seed, nodes, class).
// Graphs are 2–4 selectivity-1 chains of 2–4 Delay operators placed
// round-robin with a per-chain offset, so consecutive operators land on
// different nodes and every chain exercises the wire.
func Generate(seed int64, nodes int, class Class) (*Scenario, error) {
	return generate(seed, nodes, class, true)
}

// generate is Generate with the shed exercise controllable: the lockstep
// checker needs scenarios that stay feasible (the simulator's queues are
// unbounded and lossless, so a shedding engine could never track it).
func generate(seed int64, nodes int, class Class, allowShed bool) (*Scenario, error) {
	if nodes < 2 {
		return nil, fmt.Errorf("check: need at least 2 nodes, got %d", nodes)
	}
	rng := rand.New(rand.NewSource(seed))
	s := &Scenario{Seed: seed, Class: class, Nodes: nodes}

	chains := 2 + rng.Intn(3)
	shedExercise := allowShed && class == Strict && rng.Float64() < 0.35

	b := query.NewBuilder()
	var nodeOf []int
	for c := 0; c < chains; c++ {
		length := 2 + rng.Intn(3)
		in := b.Input(fmt.Sprintf("in%d", c))
		cur := in
		for o := 0; o < length; o++ {
			cost := 0.00003 + rng.Float64()*0.00005
			if shedExercise && c == 0 && o == 0 {
				// A deliberately expensive head operator so a rate spike
				// overruns the (shrunk) ingress queue and sheds.
				cost = 0.0015 + rng.Float64()*0.001
			}
			cur = b.Delay(fmt.Sprintf("c%d_op%d", c, o), cost, 1, cur)
			if rng.Float64() < 0.4 {
				b.SetXferCost(cur, 0.00001+rng.Float64()*0.00002)
			}
			nodeOf = append(nodeOf, (c+o)%nodes)
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("check: scenario graph: %w", err)
	}
	s.Graph = g
	plan, err := placement.NewPlan(nodeOf, nodes)
	if err != nil {
		return nil, fmt.Errorf("check: scenario plan: %w", err)
	}
	s.Plan = plan
	s.Caps = make([]float64, nodes)
	for i := range s.Caps {
		s.Caps[i] = 1
	}

	// Wall-clock traces: 50 ms bins with ±50% jitter around a per-chain
	// base rate; the shed exercise adds an 8× mid-episode spike on chain 0.
	s.Wall = time.Duration(900+rng.Intn(400)) * time.Millisecond
	wallSec := s.Wall.Seconds()
	const dt = 0.05
	bins := int(wallSec/dt) + 1
	for c := 0; c < chains; c++ {
		base := 150 + rng.Float64()*250
		rates := make([]float64, bins)
		for i := range rates {
			rates[i] = base * (0.5 + rng.Float64())
		}
		if shedExercise && c == 0 {
			lo, hi := bins/3, 2*bins/3
			for i := lo; i < hi; i++ {
				rates[i] = 1500 + rng.Float64()*1000
			}
		}
		s.Traces = append(s.Traces, trace.New(fmt.Sprintf("chk%d", c), dt, rates))
	}

	// Data-plane knobs: mix batched and legacy wire, shrink the ingress
	// queue for shed exercises, keep reconnect backoff small so healed
	// links drain quickly at quiescence.
	batch := []int{1, 64, 256}[rng.Intn(3)]
	cfg := engine.NodeConfig{
		BatchMax:    batch,
		BackoffBase: 10 * time.Millisecond,
		BackoffMax:  150 * time.Millisecond,
	}
	if shedExercise {
		cfg.IngressCap = 256
		if rng.Float64() < 0.5 {
			cfg.ShedPolicy = engine.DropOldest
		}
	}
	s.Config = cfg
	s.LegacySources = rng.Float64() < 0.3

	s.genSchedule(rng)
	return s, nil
}

// GenerateCorrSpike builds the deterministic correlated-spike scenario:
// two selectivity-1 chains whose input rates ramp up together over the same
// window — the correlated load variation ROD's rate-space reasoning targets
// (independent per-stream headroom overstates safety when streams move in
// lockstep). The spike is sized to stay feasible, so the strict conservation
// ledger holds exactly across it, and a mid-spike migration stresses the
// hand-over under the combined ramp.
func GenerateCorrSpike(seed int64, nodes int) (*Scenario, error) {
	if nodes < 2 {
		return nil, fmt.Errorf("check: need at least 2 nodes, got %d", nodes)
	}
	rng := rand.New(rand.NewSource(seed))
	s := &Scenario{Seed: seed, Class: CorrSpike, Nodes: nodes}

	b := query.NewBuilder()
	var nodeOf []int
	const chains = 2
	for c := 0; c < chains; c++ {
		length := 2 + rng.Intn(2)
		in := b.Input(fmt.Sprintf("corr%d", c))
		cur := in
		for o := 0; o < length; o++ {
			cost := 0.00004 + rng.Float64()*0.00004
			cur = b.Delay(fmt.Sprintf("s%d_op%d", c, o), cost, 1, cur)
			if rng.Float64() < 0.4 {
				b.SetXferCost(cur, 0.00001+rng.Float64()*0.00002)
			}
			nodeOf = append(nodeOf, (c+o)%nodes)
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("check: corr-spike graph: %w", err)
	}
	s.Graph = g
	plan, err := placement.NewPlan(nodeOf, nodes)
	if err != nil {
		return nil, fmt.Errorf("check: corr-spike plan: %w", err)
	}
	s.Plan = plan
	s.Caps = make([]float64, nodes)
	for i := range s.Caps {
		s.Caps[i] = 1
	}

	// Both streams ramp 3× over the same mid-episode window: identical
	// timing, per-stream jitter only in the base rate.
	s.Wall = time.Duration(1100+rng.Intn(400)) * time.Millisecond
	const dt = 0.05
	bins := int(s.Wall.Seconds()/dt) + 1
	lo, hi := int(float64(bins)*0.35), int(float64(bins)*0.65)
	for c := 0; c < chains; c++ {
		base := 150 + rng.Float64()*150
		rates := make([]float64, bins)
		for i := range rates {
			rates[i] = base
			if i >= lo && i < hi {
				rates[i] = base * 3
			}
		}
		s.Traces = append(s.Traces, trace.New(fmt.Sprintf("corr%d", c), dt, rates))
	}

	s.Config = engine.NodeConfig{
		BatchMax:    64,
		BackoffBase: 10 * time.Millisecond,
		BackoffMax:  150 * time.Millisecond,
	}

	// One migration inside the spike window, subject to the no-duplication
	// constraint, so the hand-over happens under the correlated peak.
	routed := routedNodes(s.Graph, s.Plan.NodeOf)
	migNodeOf := append([]int(nil), s.Plan.NodeOf...)
	if mv, ok := pickMigration(rng, s.Graph, migNodeOf, routed, s.Nodes); ok {
		mv.At = time.Duration((0.4 + rng.Float64()*0.2) * float64(s.Wall))
		mv.Stall = time.Duration(rng.Intn(10)) * time.Millisecond
		s.Schedule = append(s.Schedule, mv)
	}
	return s, nil
}

// GenerateRecover builds the deterministic kill-and-recover scenario: 2–3
// selectivity-1 chains of exactly 3 Delay operators, with every chain's
// MIDDLE operator placed on a dedicated victim node (the last index) and the
// heads/tails spread over the remaining nodes. Sources feed only head nodes
// and the collector hears only tail nodes, so the victim sits strictly
// interior to the durable ack protocol: killing it exercises upstream
// retention (heads' unacked batches re-send on reconnect) and WAL replay
// (admitted-but-unprocessed tuples re-enter the lanes), while the ledger and
// the sink dedup filter must both close exactly — zero slack, zero
// duplicates. No link faults and no migrations: the crash is the only chaos.
func GenerateRecover(seed int64, nodes int) (*Scenario, error) {
	if nodes < 3 {
		return nil, fmt.Errorf("check: recover scenarios need at least 3 nodes, got %d", nodes)
	}
	rng := rand.New(rand.NewSource(seed))
	s := &Scenario{Seed: seed, Class: Recover, Nodes: nodes, Victim: nodes - 1}

	chains := 2 + rng.Intn(2)
	b := query.NewBuilder()
	var nodeOf []int
	for c := 0; c < chains; c++ {
		in := b.Input(fmt.Sprintf("rec%d", c))
		cur := in
		for o := 0; o < 3; o++ {
			cost := 0.00003 + rng.Float64()*0.00005
			cur = b.Delay(fmt.Sprintf("r%d_op%d", c, o), cost, 1, cur)
			if o == 1 {
				nodeOf = append(nodeOf, s.Victim)
			} else {
				nodeOf = append(nodeOf, (c+o)%(nodes-1))
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("check: recover graph: %w", err)
	}
	s.Graph = g
	plan, err := placement.NewPlan(nodeOf, nodes)
	if err != nil {
		return nil, fmt.Errorf("check: recover plan: %w", err)
	}
	s.Plan = plan
	s.Caps = make([]float64, nodes)
	for i := range s.Caps {
		s.Caps[i] = 1
	}

	// Moderate steady rates with jitter: the point is surviving the crash,
	// not saturating the pipeline (shed must stay 0 for the exact ledger).
	s.Wall = time.Duration(1200+rng.Intn(400)) * time.Millisecond
	const dt = 0.05
	bins := int(s.Wall.Seconds()/dt) + 1
	for c := 0; c < chains; c++ {
		base := 100 + rng.Float64()*150
		rates := make([]float64, bins)
		for i := range rates {
			rates[i] = base * (0.7 + 0.6*rng.Float64())
		}
		s.Traces = append(s.Traces, trace.New(fmt.Sprintf("rec%d", c), dt, rates))
	}

	s.Config = engine.NodeConfig{
		BatchMax:        []int{64, 256}[rng.Intn(2)],
		BackoffBase:     10 * time.Millisecond,
		BackoffMax:      150 * time.Millisecond,
		CheckpointEvery: time.Duration(50+rng.Intn(100)) * time.Millisecond,
		// WALDir is filled by RunRecoverEpisode with a per-run temp root.
	}

	s.KillAt = time.Duration((0.35 + rng.Float64()*0.15) * float64(s.Wall))
	s.Downtime = time.Duration(150+rng.Intn(100)) * time.Millisecond
	return s, nil
}

// genSchedule builds the chaos schedule. Link faults always heal before the
// sources stop so the cluster can drain; migrations obey the no-duplication
// constraint (see pickMigration); kill scenarios end with one node kill.
func (s *Scenario) genSchedule(rng *rand.Rand) {
	wall := s.Wall
	frac := func(lo, hi float64) time.Duration {
		return time.Duration((lo + rng.Float64()*(hi-lo)) * float64(wall))
	}

	nLink := 1 + rng.Intn(3)
	for i := 0; i < nLink; i++ {
		src := rng.Intn(s.Nodes)
		dst := rng.Intn(s.Nodes - 1)
		if dst >= src {
			dst++
		}
		kind := []FaultKind{FaultSever, FaultDrop, FaultDelay}[rng.Intn(3)]
		at := frac(0.2, 0.5)
		op := FaultOp{At: at, Kind: kind, Node: src, Peer: dst}
		if kind == FaultDelay {
			op.Delay = time.Duration(2+rng.Intn(15)) * time.Millisecond
		}
		if kind == FaultSever {
			s.Severs++
		}
		s.Schedule = append(s.Schedule, op)
		heal := at + frac(0.1, 0.25)
		if max := time.Duration(0.75 * float64(wall)); heal > max {
			heal = max
		}
		s.Schedule = append(s.Schedule, FaultOp{At: heal, Kind: FaultHeal, Node: src, Peer: dst})
	}

	switch s.Class {
	case Strict:
		// Track which nodes have (ever had) a route for each stream; a
		// migration destination must be fresh for the operator's input and
		// output streams, or relays left behind by earlier moves would
		// double-deliver (the at-least-once hazard the ledger cannot
		// distinguish from loss).
		routed := routedNodes(s.Graph, s.Plan.NodeOf)
		nodeOf := append([]int(nil), s.Plan.NodeOf...)
		nMig := 1 + rng.Intn(2)
		for i := 0; i < nMig; i++ {
			mv, ok := pickMigration(rng, s.Graph, nodeOf, routed, s.Nodes)
			if !ok {
				break
			}
			mv.At = frac(0.3, 0.6)
			mv.Stall = time.Duration(rng.Intn(20)) * time.Millisecond
			s.Schedule = append(s.Schedule, mv)
		}
	case KillNode:
		s.Schedule = append(s.Schedule, FaultOp{At: frac(0.45, 0.6), Kind: FaultKill, Node: rng.Intn(s.Nodes)})
	}

	sortSchedule(s.Schedule)
}

// routedNodes maps each stream to the set of nodes holding any route for it
// under the given placement: its producer's home (forwarding) and each
// consumer's home (subscription).
func routedNodes(g *query.Graph, nodeOf []int) map[query.StreamID]map[int]bool {
	routed := map[query.StreamID]map[int]bool{}
	mark := func(sid query.StreamID, node int) {
		m := routed[sid]
		if m == nil {
			m = map[int]bool{}
			routed[sid] = m
		}
		m[node] = true
	}
	for _, op := range g.Ops() {
		home := nodeOf[op.ID]
		for _, in := range op.Inputs {
			mark(in, home)
		}
		mark(op.Out, home)
	}
	return routed
}

// pickMigration draws a random (operator, destination) pair whose
// destination holds no route — past or present — for any of the operator's
// streams, then updates nodeOf and the routed sets as if the move ran.
func pickMigration(rng *rand.Rand, g *query.Graph, nodeOf []int, routed map[query.StreamID]map[int]bool, nodes int) (FaultOp, bool) {
	for attempt := 0; attempt < 32; attempt++ {
		op := g.Op(query.OpID(rng.Intn(g.NumOps())))
		dst := rng.Intn(nodes)
		if dst == nodeOf[op.ID] {
			continue
		}
		ok := !routed[op.Out][dst]
		for _, in := range op.Inputs {
			if routed[in][dst] {
				ok = false
			}
		}
		if !ok {
			continue
		}
		from := nodeOf[op.ID]
		nodeOf[op.ID] = dst
		for _, in := range op.Inputs {
			routed[in][dst] = true
		}
		routed[op.Out][dst] = true
		return FaultOp{Kind: FaultMigrate, Node: from, Op: int(op.ID), To: dst}, true
	}
	return FaultOp{}, false
}

// sortSchedule orders by time (stable for equal times, insertion order).
func sortSchedule(ops []FaultOp) {
	for i := 1; i < len(ops); i++ {
		for j := i; j > 0 && ops[j].At < ops[j-1].At; j-- {
			ops[j], ops[j-1] = ops[j-1], ops[j]
		}
	}
}

package check

import (
	"fmt"
	"time"

	"rodsp/internal/core"
	"rodsp/internal/engine"
	"rodsp/internal/mat"
	"rodsp/internal/obs"
	"rodsp/internal/placement"
	"rodsp/internal/query"
	"rodsp/internal/trace"
	"rodsp/internal/workload"
)

// Sharded episodes exercise keyed operator parallelism end to end: a hot
// operator whose standalone load exceeds one node's capacity — the condition
// under which no whole-operator placement can be feasible — is driven
// through three arms:
//
//   - unsharded: the operator on one node must shed (the workload genuinely
//     exceeds a single node, or the sharded arms prove nothing);
//   - sharded, uniform hashing: the PlanShards transform splits it k ways,
//     replicas spread one per node, slots assigned i%k;
//   - sharded, skew-aware: the same split with the slot table bin-packed
//     against the observed Zipf slot profile, plus one live repartition
//     mid-traffic.
//
// Both sharded arms must settle with the conservation ledger at residual 0
// and zero shed, and under Zipf(1.1) keys the skew-aware arm's minimum node
// headroom must strictly beat uniform hashing's.

const (
	shardedEpisodeWall = 2 * time.Second
	shardedRate        = 1000.0 // tuples/s, const
	shardedHotCost     = 0.002  // hot-operator load = 2.0 nodes at the drive rate
	shardedZipfS       = 1.1
	shardedKeyDomain   = 1 << 16
	// shardedProfileN is how many keys the planner draws to estimate the
	// per-slot rate profile the skew-aware table packs.
	shardedProfileN = 200_000
)

// ShardedScenario is one seeded sharded episode: the unsharded base
// scenario, the PlanShards-split graph, its placement (splitter, merge and
// tail on node 0; replica i on node 1+i), and the measured slot profile.
type ShardedScenario struct {
	Seed int64
	K    int

	Base *Scenario // unsharded arm: 2 nodes, bounded ingress, must shed

	Graph *query.Graph // sharded graph (PlanShards output)
	Group query.ShardGroup
	Plan  *placement.Plan
	Nodes int
	Caps  []float64

	Trace  *trace.Trace
	Wall   time.Duration
	Config engine.NodeConfig

	// SlotRates is the Zipf key profile over the partition table's slots
	// (fractions summing to 1), measured from the same seeded generator
	// that drives the episode.
	SlotRates []float64
}

// GenerateSharded builds the deterministic sharded scenario for one seed.
// k is the shard count the planner must arrive at (0 = default 4); the
// hot-operator cost and target utilization are derived so PlanShards picks
// exactly that k, keeping the episode a true end-to-end planner exercise.
func GenerateSharded(seed int64, k int) (*ShardedScenario, error) {
	if k == 0 {
		k = 4
	}
	if k < 2 {
		return nil, fmt.Errorf("check: sharded episode needs k ≥ 2, got %d", k)
	}
	s := &ShardedScenario{Seed: seed, K: k, Wall: shardedEpisodeWall}

	build := func() (*query.Graph, error) {
		b := query.NewBuilder()
		in := b.Input("keys")
		hot := b.Delay("hot", shardedHotCost, 1, in)
		b.Delay("tail", 0.00005, 1, hot)
		return b.Build()
	}
	g, err := build()
	if err != nil {
		return nil, fmt.Errorf("check: sharded graph: %w", err)
	}

	const dt = 0.05
	bins := int(s.Wall.Seconds()/dt) + 1
	rates := make([]float64, bins)
	for i := range rates {
		rates[i] = shardedRate
	}
	s.Trace = trace.New("keys", dt, rates)
	s.Config = engine.NodeConfig{
		BatchMax:    64,
		IngressCap:  512,
		BackoffBase: 10 * time.Millisecond,
		BackoffMax:  150 * time.Millisecond,
	}

	// Unsharded base arm: hot on node 0, tail on node 1. Load 2.0 against
	// capacity 1 with a bounded ingress queue — it must shed.
	basePlan, err := placement.NewPlan([]int{0, 1}, 2)
	if err != nil {
		return nil, err
	}
	s.Base = &Scenario{
		Seed: seed, Class: Sharded, Nodes: 2,
		Graph: g, Plan: basePlan, Caps: []float64{1, 1},
		Traces: []*trace.Trace{s.Trace}, Wall: s.Wall,
		Config: s.Config,
	}

	// Sharded graph: the planner must decide to split the hot operator into
	// exactly k shards at the forecast rate point. TargetUtil is derived
	// from the known load so ceil(load/(target·cap)) == k.
	sharded, decisions, err := core.PlanShards(g, mat.Vec{1}, mat.Vec{shardedRate}, core.ShardPlanConfig{
		MaxShards:  k,
		TargetUtil: shardedRate * shardedHotCost / float64(k),
	})
	if err != nil {
		return nil, fmt.Errorf("check: sharding planner: %w", err)
	}
	if len(decisions) != 1 || decisions[0].K != k {
		return nil, fmt.Errorf("check: planner decisions %+v, want one split at k=%d", decisions, k)
	}
	s.Graph = sharded
	groups, err := query.ShardGroups(sharded)
	if err != nil {
		return nil, err
	}
	s.Group = groups[0]

	// Placement: splitter, merge and every unsharded operator on node 0;
	// replica i alone on node 1+i, so per-node load is that shard's slot
	// share times the hot load and the min-headroom comparison reads
	// directly off node utilizations.
	s.Nodes = 1 + k
	nodeOf := make([]int, sharded.NumOps())
	for i, r := range s.Group.Replicas {
		nodeOf[r] = 1 + i
	}
	s.Plan, err = placement.NewPlan(nodeOf, s.Nodes)
	if err != nil {
		return nil, err
	}
	s.Caps = make([]float64, s.Nodes)
	for i := range s.Caps {
		s.Caps[i] = 1
	}

	// Slot profile from a twin of the driving key generator.
	gen, err := workload.ZipfKeys(seed, shardedZipfS, shardedKeyDomain)
	if err != nil {
		return nil, err
	}
	s.SlotRates = workload.SlotRates(gen, shardedProfileN)
	return s, nil
}

// runShardedArm drives the sharded graph once under the given slot table.
// When repart is true, the table's first two shard labels are swapped by a
// live repartition at half the drive time — a genuine slot reassignment
// under traffic. Returns the episode result and the arm's minimum node
// headroom (1 − max node utilization).
func runShardedArm(sc *ShardedScenario, ev *obs.EventLog, slots []int, repart bool) (*EpisodeResult, float64, error) {
	res := &EpisodeResult{Scenario: sc.Base}
	plan, err := placement.NewPlan(append([]int(nil), sc.Plan.NodeOf...), sc.Nodes)
	if err != nil {
		return nil, 0, err
	}
	cl, err := engine.StartClusterConfig(sc.Caps, sc.Config)
	if err != nil {
		return nil, 0, fmt.Errorf("check: starting cluster: %w", err)
	}
	defer cl.Close()
	if ev != nil {
		cl.SetEvents(ev)
	}
	if err := cl.Deploy(sc.Graph, plan, sc.Caps); err != nil {
		return nil, 0, err
	}
	if err := cl.Repartition(sc.Group.Stream, slots); err != nil {
		return nil, 0, fmt.Errorf("check: installing slot table: %w", err)
	}
	if err := cl.Start(); err != nil {
		return nil, 0, err
	}

	keys, err := workload.ZipfKeys(sc.Seed, shardedZipfS, shardedKeyDomain)
	if err != nil {
		return nil, 0, err
	}
	addrs := cl.Addrs()
	inputNodes := engine.InputNodes(sc.Graph, plan)
	in := sc.Graph.Inputs()[0]
	var dests []string
	for _, n := range inputNodes[in] {
		dests = append(dests, addrs[n])
	}
	drv := &engine.SourceDriver{
		Stream:  in,
		Trace:   sc.Trace,
		Addrs:   dests,
		MaxRate: 5000,
		Keys:    keys,
	}
	done := make(chan error, 1)
	go func() {
		n, err := drv.Run(sc.Wall, nil)
		res.Sources, res.SrcDropped = n, drv.Dropped
		done <- err
	}()

	if repart {
		time.Sleep(sc.Wall / 2)
		// Swap shard labels 0 and 1: slots genuinely reassign (tuples shift
		// between two live replicas) while the load split stays the same
		// whenever those shards carry near-equal shares.
		swapped := make([]int, len(slots))
		for i, sh := range slots {
			switch sh {
			case 0:
				swapped[i] = 1
			case 1:
				swapped[i] = 0
			default:
				swapped[i] = sh
			}
		}
		if err := cl.Repartition(sc.Group.Stream, swapped); err != nil {
			return nil, 0, fmt.Errorf("check: live repartition: %w", err)
		}
	}
	if err := <-done; err != nil {
		return nil, 0, fmt.Errorf("check: source: %w", err)
	}
	if err := cl.AwaitQuiescence(15*time.Second, 100*time.Millisecond); err != nil {
		res.Violation = violation(ev, sc.Base, fmt.Errorf("check: liveness: %w", err))
		return res, 0, nil
	}

	stats, _ := cl.Stats()
	delivered, _, _, _, _ := cl.Collector.LatencyStats()
	res.Delivered = delivered
	if s, ok := cl.Collector.LatencySummary(); ok {
		res.P50Ms, res.P99Ms = s.P50*1000, s.P99*1000
	}
	res.Ledger = Assemble(stats, delivered, res.Sources, res.SrcDropped)

	minHead := 1.0
	var partTotal int64
	for _, s := range stats {
		if s == nil {
			res.Violation = violation(ev, sc.Base, fmt.Errorf("check: node unreachable in a sharded episode"))
			return res, 0, nil
		}
		if h := 1 - s.Utilization; h < minHead {
			minHead = h
		}
		for _, counts := range s.PartCounts {
			for _, c := range counts {
				partTotal += c
			}
		}
	}
	if err := CheckOutboxes(stats); err != nil {
		res.Violation = violation(ev, sc.Base, err)
		return res, minHead, nil
	}
	if err := res.Ledger.Check(0); err != nil {
		res.Violation = violation(ev, sc.Base, err)
		return res, minHead, nil
	}
	if res.Delivered == 0 {
		res.Violation = violation(ev, sc.Base, fmt.Errorf("check: no tuple reached the sink (sources=%d)", res.Sources))
		return res, minHead, nil
	}
	// Partition-counter conservation: every keyed tuple crossed the
	// splitter's table exactly once.
	if keyedIn := res.Sources - res.SrcDropped; partTotal != keyedIn {
		res.Violation = violation(ev, sc.Base,
			fmt.Errorf("check: partition counters total %d, want %d keyed tuples", partTotal, keyedIn))
		return res, minHead, nil
	}
	return res, minHead, nil
}

// ShardedPairResult reports the three arms of one sharded episode and the
// cross-arm gates.
type ShardedPairResult struct {
	Scenario *ShardedScenario

	Unsharded *EpisodeResult
	Uniform   *EpisodeResult
	SkewAware *EpisodeResult

	// Minimum node headroom (1 − max node utilization) per sharded arm.
	HeadroomUniform float64
	HeadroomSkew    float64

	Violation error
}

// RunShardedPair runs the seeded sharded episode's three arms and asserts
// the keyed-parallelism acceptance gate:
//
//   - the unsharded arm sheds (the hot operator genuinely exceeds one node);
//   - both sharded arms settle at ledger residual 0 with zero shed — the
//     skew-aware arm across one live repartition;
//   - the skew-aware arm's minimum node headroom strictly beats uniform
//     hashing's under the Zipf(1.1) key skew.
func RunShardedPair(seed int64, k int, ev *obs.EventLog) (*ShardedPairResult, error) {
	sc, err := GenerateSharded(seed, k)
	if err != nil {
		return nil, err
	}
	pr := &ShardedPairResult{Scenario: sc}

	pr.Unsharded, err = RunEpisode(sc.Base, nil)
	if err != nil {
		return nil, fmt.Errorf("check: unsharded arm: %w", err)
	}
	pr.Uniform, pr.HeadroomUniform, err = runShardedArm(sc, nil, query.UniformSlots(sc.K), false)
	if err != nil {
		return nil, fmt.Errorf("check: uniform arm: %w", err)
	}
	skewEv := obs.NewEventLog(4096)
	skew := workload.AssignSkewAware(sc.SlotRates, sc.K)
	pr.SkewAware, pr.HeadroomSkew, err = runShardedArm(sc, skewEv, skew, true)
	if err != nil {
		return nil, fmt.Errorf("check: skew-aware arm: %w", err)
	}

	fail := func(err error) (*ShardedPairResult, error) {
		pr.Violation = violation(ev, sc.Base, err)
		return pr, nil
	}
	if pr.Unsharded.Violation != nil {
		return fail(fmt.Errorf("check: unsharded arm: %w", pr.Unsharded.Violation))
	}
	if pr.Uniform.Violation != nil {
		return fail(fmt.Errorf("check: uniform arm: %w", pr.Uniform.Violation))
	}
	if pr.SkewAware.Violation != nil {
		return fail(fmt.Errorf("check: skew-aware arm: %w", pr.SkewAware.Violation))
	}
	if pr.Unsharded.Ledger.Shed == 0 {
		return fail(fmt.Errorf("check: unsharded arm never shed — the hot operator fits one node and the pair is vacuous"))
	}
	if pr.Uniform.Ledger.Shed != 0 {
		return fail(fmt.Errorf("check: uniform sharded arm shed %d tuples", pr.Uniform.Ledger.Shed))
	}
	if pr.SkewAware.Ledger.Shed != 0 {
		return fail(fmt.Errorf("check: skew-aware arm shed %d tuples across the live repartition", pr.SkewAware.Ledger.Shed))
	}
	if n := skewEv.Count(obs.EventRepartition); n < 1 {
		return fail(fmt.Errorf("check: skew-aware arm recorded no live repartition"))
	}
	if pr.HeadroomSkew <= pr.HeadroomUniform {
		return fail(fmt.Errorf("check: skew-aware min headroom %.3f does not beat uniform's %.3f under Zipf(%.1f)",
			pr.HeadroomSkew, pr.HeadroomUniform, shardedZipfS))
	}
	return pr, nil
}

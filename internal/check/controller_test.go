package check

import (
	"testing"

	"rodsp/internal/obs"
)

// TestControllerPair runs the closed-loop acceptance episode: with the
// elastic controller the flash crowd is migrated away proactively and the
// ledger stays at residual 0; without it the same workload sheds or
// overloads.
func TestControllerPair(t *testing.T) {
	if testing.Short() {
		t.Skip("controller episode drives ~6s of wall-clock sources")
	}
	ev := obs.NewEventLog(0)
	pr, err := RunControllerPair(1, ev)
	if err != nil {
		t.Fatalf("infrastructure: %v", err)
	}
	if pr.Violation != nil {
		t.Fatalf("violation: %v", pr.Violation)
	}
	t.Logf("on-arm: %d migrations (first at %.3fs), first onset %.3fs, residual %d, shed %d",
		pr.On.Migrations, pr.FirstMoveT, pr.FirstOnsetT,
		pr.On.Ledger.Residual(), pr.On.Ledger.Shed)
	t.Logf("off-arm: shed %d, residual %d", pr.Off.Ledger.Shed, pr.Off.Ledger.Residual())
}

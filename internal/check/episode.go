package check

import (
	"fmt"
	"math"
	"os"
	"sync"
	"time"

	"rodsp/internal/engine"
	"rodsp/internal/obs"
	"rodsp/internal/placement"
	"rodsp/internal/query"
)

// EpisodeResult reports one executed scenario. Violation carries the first
// invariant failure (nil = the episode passed); infrastructure errors —
// a cluster that would not start, a driver that could not dial — surface
// through RunEpisode's error instead.
type EpisodeResult struct {
	Scenario   *Scenario
	Ledger     Ledger
	Sources    int64
	SrcDropped int64
	Delivered  int64
	Migrations int
	Violation  error

	// End-to-end sink latency quantiles (milliseconds) from the collector's
	// reservoir at episode end; zero when nothing reached the sink. Feeds
	// rodcheck's SLO grading.
	P50Ms float64
	P99Ms float64

	// Recover-class fields (see RunRecoverEpisode): duplicate deliveries the
	// sink dedup filter dropped (must be 0), the victim's restart latency in
	// milliseconds (rebind + WAL replay), and the WAL root — cleaned up on
	// success, retained on failure so the failing log can be inspected.
	Duplicates    int64
	RecoverMillis float64
	WALDir        string
}

// RunEpisode drives one scenario through a loopback engine cluster:
// deploy, start sources, apply the chaos schedule, heal, reach quiescence,
// snapshot, and assert the class's invariants. ev (optional) receives the
// cluster's control-plane events plus an invariant_violation event on
// failure.
func RunEpisode(sc *Scenario, ev *obs.EventLog) (*EpisodeResult, error) {
	res := &EpisodeResult{Scenario: sc}
	plan, err := placement.NewPlan(append([]int(nil), sc.Plan.NodeOf...), sc.Nodes)
	if err != nil {
		return nil, err
	}

	cl, err := engine.StartClusterConfig(sc.Caps, sc.Config)
	if err != nil {
		return nil, fmt.Errorf("check: starting cluster: %w", err)
	}
	defer cl.Close()
	if ev != nil {
		cl.SetEvents(ev)
	}
	if err := cl.Deploy(sc.Graph, plan, sc.Caps); err != nil {
		return nil, err
	}
	if err := cl.Start(); err != nil {
		return nil, err
	}

	addrs := cl.Addrs()
	inputNodes := engine.InputNodes(sc.Graph, plan)

	// Sources: one driver per input stream, snapshot of consumer addresses
	// taken now (migrations leave relays behind, so these stay valid).
	type srcOut struct {
		injected int64
		dropped  int64
		err      error
	}
	inputs := sc.Graph.Inputs()
	outs := make([]srcOut, len(inputs))
	var wg sync.WaitGroup
	for i, in := range inputs {
		var dests []string
		for _, n := range inputNodes[in] {
			dests = append(dests, addrs[n])
		}
		drv := &engine.SourceDriver{
			Stream:  in,
			Trace:   sc.Traces[i],
			Addrs:   dests,
			MaxRate: 5000,
			Legacy:  sc.LegacySources,
		}
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			n, err := drv.Run(sc.Wall, nil)
			outs[slot] = srcOut{injected: n, dropped: drv.Dropped, err: err}
		}(i)
	}

	// Chaos schedule, applied on the episode's own clock. Un-healed link
	// faults are tracked for the heal-all pass; control errors against a
	// node killed earlier in the schedule are expected and skipped.
	start := time.Now()
	faulted := map[[2]int]bool{}
	killed := -1
	var applyErr error
	for _, op := range sc.Schedule {
		if d := op.At - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		switch op.Kind {
		case FaultSever, FaultDrop, FaultDelay:
			if op.Node == killed {
				continue
			}
			spec := engine.FaultSpec{Addr: addrs[op.Peer]}
			switch op.Kind {
			case FaultSever:
				spec.Sever = true
			case FaultDrop:
				spec.Drop = true
			case FaultDelay:
				spec.DelayMs = float64(op.Delay) / float64(time.Millisecond)
			}
			if err := cl.Controls[op.Node].Fault(spec); err != nil && applyErr == nil {
				applyErr = fmt.Errorf("check: fault %s on node %d: %w", op.Kind, op.Node, err)
			}
			faulted[[2]int{op.Node, op.Peer}] = true
		case FaultHeal:
			if op.Node == killed {
				continue
			}
			if err := cl.Controls[op.Node].Fault(engine.FaultSpec{Addr: addrs[op.Peer], Clear: true}); err != nil && applyErr == nil {
				applyErr = fmt.Errorf("check: heal on node %d: %w", op.Node, err)
			}
			delete(faulted, [2]int{op.Node, op.Peer})
		case FaultMigrate:
			if err := cl.MoveOperator(sc.Graph, plan, query.OpID(op.Op), op.To, op.Stall); err != nil {
				if applyErr == nil {
					applyErr = fmt.Errorf("check: migrating op %d to node %d: %w", op.Op, op.To, err)
				}
			} else {
				res.Migrations++
			}
		case FaultKill:
			if err := cl.Controls[op.Node].Fault(engine.FaultSpec{Kill: true}); err != nil && applyErr == nil {
				applyErr = fmt.Errorf("check: killing node %d: %w", op.Node, err)
			}
			killed = op.Node
		}
	}

	wg.Wait()
	for i := range outs {
		res.Sources += outs[i].injected
		res.SrcDropped += outs[i].dropped
		if outs[i].err != nil && (sc.Class == Strict || sc.Class == CorrSpike) {
			return nil, fmt.Errorf("check: source %d: %w", i, outs[i].err)
		}
	}
	if applyErr != nil && (sc.Class == Strict || sc.Class == CorrSpike) {
		return nil, applyErr
	}

	// Heal every remaining link fault so the cluster can drain.
	for key := range faulted {
		if key[0] == killed {
			continue
		}
		cl.Controls[key[0]].Fault(engine.FaultSpec{Addr: addrs[key[1]], Clear: true}) //nolint:errcheck
	}

	// Quiescence: strict episodes must fully drain; kill episodes only
	// settle (survivors' outboxes toward the dead peer never flush).
	quiesce := cl.AwaitQuiescence
	if sc.Class == KillNode {
		quiesce = cl.AwaitSettled
	}
	if err := quiesce(15*time.Second, 100*time.Millisecond); err != nil {
		res.Violation = violation(ev, sc, fmt.Errorf("check: liveness: %w", err))
		return res, nil
	}

	stats, _ := cl.Stats()
	delivered, _, _, _, _ := cl.Collector.LatencyStats()
	res.Delivered = delivered
	if s, ok := cl.Collector.LatencySummary(); ok {
		res.P50Ms, res.P99Ms = s.P50*1000, s.P99*1000
	}
	res.Ledger = Assemble(stats, delivered, res.Sources, res.SrcDropped)
	// CHECKDEBUG=1 dumps the raw per-node snapshots for failing-seed triage.
	if os.Getenv("CHECKDEBUG") != "" {
		for i, s := range stats {
			fmt.Fprintf(os.Stderr, "check: node %d: %+v\n", i, s)
		}
	}

	// Invariants common to both classes: the outbox identity on every
	// reachable node.
	if err := CheckOutboxes(stats); err != nil {
		res.Violation = violation(ev, sc, err)
		return res, nil
	}

	switch sc.Class {
	case Strict, CorrSpike:
		for i, s := range stats {
			if s == nil {
				res.Violation = violation(ev, sc, fmt.Errorf("check: node %d unreachable in a %s episode", i, sc.Class))
				return res, nil
			}
		}
		if err := res.Ledger.Check(sc.Slack()); err != nil {
			res.Violation = violation(ev, sc, err)
			return res, nil
		}
		if res.Delivered == 0 {
			res.Violation = violation(ev, sc, fmt.Errorf("check: no tuple reached the sink (sources=%d)", res.Sources))
			return res, nil
		}
		if res.Migrations > 0 {
			if err := checkCoefSums(sc.Graph, plan); err != nil {
				res.Violation = violation(ev, sc, err)
				return res, nil
			}
		}
	case KillNode:
		reachable := 0
		for _, s := range stats {
			if s != nil {
				reachable++
			}
		}
		if reachable == 0 {
			res.Violation = violation(ev, sc, fmt.Errorf("check: every node unreachable after killing one"))
			return res, nil
		}
	}
	return res, nil
}

// violation records the failure as an invariant_violation event and passes
// the error through.
func violation(ev *obs.EventLog, sc *Scenario, err error) error {
	if ev != nil {
		ev.Emit(obs.LevelWarn, obs.EventInvariantViolation,
			"seed", sc.Seed, "class", sc.Class.String(), "err", err.Error())
	}
	return err
}

// checkCoefSums asserts the migration-invariance of the load model: the
// per-node aggregation of operator coefficient rows under the (mutated)
// plan must still column-sum to the model's totals — migrations move load
// between nodes but never create or destroy it.
func checkCoefSums(g *query.Graph, plan *placement.Plan) error {
	lm, err := query.BuildLoadModel(g)
	if err != nil {
		return fmt.Errorf("check: load model: %w", err)
	}
	d := lm.D()
	nodes := 0
	for _, n := range plan.NodeOf {
		if n < 0 {
			return fmt.Errorf("check: operator unassigned after migration")
		}
		if n+1 > nodes {
			nodes = n + 1
		}
	}
	agg := make([]float64, nodes*d)
	for op := 0; op < lm.Coef.Rows; op++ {
		row := lm.Coef.Row(op)
		base := plan.NodeOf[op] * d
		for j := 0; j < d; j++ {
			agg[base+j] += row[j]
		}
	}
	want := lm.CoefSums()
	for j := 0; j < d; j++ {
		var got float64
		for n := 0; n < nodes; n++ {
			got += agg[n*d+j]
		}
		if math.Abs(got-want[j]) > 1e-9 {
			return fmt.Errorf("check: coefficient sum for var %d changed under migration: %g vs %g", j, got, want[j])
		}
	}
	return nil
}

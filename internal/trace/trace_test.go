package trace

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestTraceBasics(t *testing.T) {
	tr := New("x", 0.5, []float64{2, 4, 6})
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Duration() != 1.5 {
		t.Fatalf("Duration = %g", tr.Duration())
	}
	if tr.Mean() != 4 {
		t.Fatalf("Mean = %g", tr.Mean())
	}
	if tr.Max() != 6 {
		t.Fatalf("Max = %g", tr.Max())
	}
	if math.Abs(tr.PeakToMean()-1.5) > 1e-12 {
		t.Fatalf("PeakToMean = %g", tr.PeakToMean())
	}
	if got := tr.RateAt(0.6); got != 4 {
		t.Fatalf("RateAt(0.6) = %g", got)
	}
	if got := tr.RateAt(-1); got != 2 {
		t.Fatalf("RateAt(-1) = %g (clamp)", got)
	}
	if got := tr.RateAt(99); got != 6 {
		t.Fatalf("RateAt(99) = %g (clamp)", got)
	}
	if got := (&Trace{}).RateAt(0); got != 0 {
		t.Fatalf("empty RateAt = %g", got)
	}
}

func TestNormalizedAndScale(t *testing.T) {
	tr := New("x", 1, []float64{2, 4, 6})
	n := tr.Normalized()
	if math.Abs(n.Mean()-1) > 1e-12 {
		t.Fatalf("normalized mean = %g", n.Mean())
	}
	if tr.Rates[0] != 2 {
		t.Fatal("Normalized must not mutate the original")
	}
	s := tr.ScaleToMean(10)
	if math.Abs(s.Mean()-10) > 1e-12 {
		t.Fatalf("scaled mean = %g", s.Mean())
	}
	// CV is scale-invariant.
	if math.Abs(s.CV()-tr.CV()) > 1e-12 {
		t.Fatal("CV must be scale invariant")
	}
	zero := New("z", 1, []float64{0, 0})
	if zero.Normalized().Mean() != 0 || zero.CV() != 0 || zero.PeakToMean() != 0 {
		t.Fatal("zero trace handling wrong")
	}
}

func TestAggregate(t *testing.T) {
	tr := New("x", 1, []float64{1, 3, 5, 7, 9, 11})
	a := tr.Aggregate(2)
	if a.Len() != 3 || a.Dt != 2 {
		t.Fatalf("aggregate shape %d@%g", a.Len(), a.Dt)
	}
	if a.Rates[0] != 2 || a.Rates[2] != 10 {
		t.Fatalf("aggregate rates %v", a.Rates)
	}
	// Mean is preserved.
	if math.Abs(a.Mean()-tr.Mean()) > 1e-12 {
		t.Fatal("aggregation must preserve the mean")
	}
	if got := tr.Aggregate(1); got.Len() != tr.Len() {
		t.Fatal("Aggregate(1) must be a clone")
	}
}

func TestPoissonTrace(t *testing.T) {
	tr := Poisson(PoissonConfig{Mean: 100, Dt: 1, Bins: 2000, Seed: 1})
	if math.Abs(tr.Mean()-100) > 3 {
		t.Fatalf("poisson mean = %g, want ~100", tr.Mean())
	}
	// CV of Poisson(100) bins ≈ 1/sqrt(100) = 0.1.
	if tr.CV() < 0.05 || tr.CV() > 0.2 {
		t.Fatalf("poisson CV = %g, want ~0.1", tr.CV())
	}
	// Determinism.
	tr2 := Poisson(PoissonConfig{Mean: 100, Dt: 1, Bins: 2000, Seed: 1})
	for i := range tr.Rates {
		if tr.Rates[i] != tr2.Rates[i] {
			t.Fatal("same seed must reproduce the trace")
		}
	}
}

func TestPoissonSmallAndZeroLambda(t *testing.T) {
	tr := Poisson(PoissonConfig{Mean: 0, Dt: 1, Bins: 10, Seed: 1})
	for _, r := range tr.Rates {
		if r != 0 {
			t.Fatal("zero-mean poisson must be all zero")
		}
	}
	tr = Poisson(PoissonConfig{Mean: 2, Dt: 1, Bins: 5000, Seed: 2})
	if math.Abs(tr.Mean()-2) > 0.2 {
		t.Fatalf("small-lambda mean = %g", tr.Mean())
	}
}

func TestParetoOnOffSelfSimilar(t *testing.T) {
	tr := ParetoOnOff(ParetoOnOffConfig{
		Sources: 30, OnAlpha: 1.4, OffAlpha: 1.5,
		MeanOn: 2, MeanOff: 6, PeakRate: 1,
		Dt: 1, Bins: 4096, Seed: 7,
	})
	if tr.Mean() <= 0 {
		t.Fatal("aggregate must be positive")
	}
	h := tr.Hurst()
	if math.IsNaN(h) || h < 0.55 {
		t.Fatalf("Hurst = %g, want > 0.55 (self-similar)", h)
	}
	// Aggregated self-similar traffic keeps substantial variability.
	cv1 := tr.CV()
	cv16 := tr.Aggregate(16).CV()
	if cv16 < cv1/6 {
		t.Fatalf("CV collapsed under aggregation: %g -> %g (not self-similar)", cv1, cv16)
	}
}

func TestPoissonSmoothsUnderAggregationButParetoDoesNot(t *testing.T) {
	pois := Poisson(PoissonConfig{Mean: 30, Dt: 1, Bins: 4096, Seed: 3})
	pareto := ParetoOnOff(ParetoOnOffConfig{
		Sources: 30, OnAlpha: 1.3, OffAlpha: 1.5,
		MeanOn: 2, MeanOff: 6, PeakRate: 1,
		Dt: 1, Bins: 4096, Seed: 3,
	})
	pRatio := pois.Aggregate(64).CV() / pois.CV()
	sRatio := pareto.Aggregate(64).CV() / pareto.CV()
	if sRatio <= pRatio {
		t.Fatalf("self-similar trace should retain more CV under aggregation: pareto %g vs poisson %g", sRatio, pRatio)
	}
}

func TestBModel(t *testing.T) {
	tr := BModel(BModelConfig{Bias: 0.7, Levels: 10, Total: 1024, Dt: 1, Seed: 5})
	if tr.Len() != 1024 {
		t.Fatalf("Len = %d", tr.Len())
	}
	// Volume is conserved exactly by the cascade.
	var sum float64
	for _, r := range tr.Rates {
		sum += r * tr.Dt
	}
	if math.Abs(sum-1024) > 1e-6 {
		t.Fatalf("cascade lost volume: %g", sum)
	}
	// Bias 0.5 is flat; higher bias is burstier.
	flat := BModel(BModelConfig{Bias: 0.500001, Levels: 10, Total: 1024, Dt: 1, Seed: 5})
	if tr.CV() <= flat.CV() {
		t.Fatalf("bias 0.7 CV %g should exceed bias 0.5 CV %g", tr.CV(), flat.CV())
	}
}

func TestBModelPanicsOnBadBias(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BModel(BModelConfig{Bias: 1.5, Levels: 4, Total: 1, Dt: 1})
}

func TestDiurnal(t *testing.T) {
	tr := Diurnal(DiurnalConfig{Mean: 100, Swing: 0.5, Period: 256, Noise: 0, Dt: 1, Bins: 1024, Seed: 1})
	if math.Abs(tr.Mean()-100) > 1 {
		t.Fatalf("diurnal mean = %g", tr.Mean())
	}
	if tr.Max() < 145 || tr.Max() > 155 {
		t.Fatalf("diurnal peak = %g, want ~150", tr.Max())
	}
	for _, r := range tr.Rates {
		if r < 0 {
			t.Fatal("rates must be non-negative")
		}
	}
}

func TestWithSpikes(t *testing.T) {
	base := Diurnal(DiurnalConfig{Mean: 10, Swing: 0, Period: 100, Noise: 0, Dt: 1, Bins: 3600, Seed: 1})
	sp := WithSpikes(base, SpikesConfig{EventsPerHour: 10, Amplitude: 3, DecaySeconds: 30, Seed: 2})
	if sp.Max() <= base.Max() {
		t.Fatal("spikes must raise the peak")
	}
	if sp.Mean() <= base.Mean() {
		t.Fatal("spikes must raise the mean")
	}
	if base.Rates[0] != 10 {
		t.Fatal("WithSpikes must not mutate its input")
	}
}

func TestMix(t *testing.T) {
	a := New("a", 1, []float64{1, 2})
	b := New("b", 1, []float64{10, 20})
	m, err := Mix("m", []float64{1, 0.5}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rates[0] != 6 || m.Rates[1] != 12 {
		t.Fatalf("Mix = %v", m.Rates)
	}
	if _, err := Mix("m", []float64{1}, a, b); err == nil {
		t.Fatal("weight mismatch must error")
	}
	c := New("c", 2, []float64{1, 2})
	if _, err := Mix("m", []float64{1, 1}, a, c); err == nil {
		t.Fatal("dt mismatch must error")
	}
	if _, err := Mix("m", nil); err == nil {
		t.Fatal("empty mix must error")
	}
}

func TestPresets(t *testing.T) {
	ps := Presets(42)
	if len(ps) != 3 {
		t.Fatalf("Presets = %d traces", len(ps))
	}
	names := map[string]bool{}
	for _, tr := range ps {
		names[tr.Name] = true
		if math.Abs(tr.Mean()-1) > 1e-9 {
			t.Fatalf("%s mean = %g, want 1 (normalized)", tr.Name, tr.Mean())
		}
		if tr.CV() < 0.15 {
			t.Fatalf("%s CV = %g, too smooth to exercise resiliency", tr.Name, tr.CV())
		}
		h := tr.Hurst()
		if math.IsNaN(h) || h < 0.5 {
			t.Fatalf("%s Hurst = %g, want >= 0.5", tr.Name, h)
		}
	}
	for _, n := range []string{"PKT", "TCP", "HTTP"} {
		if !names[n] {
			t.Fatalf("missing preset %s", n)
		}
	}
	// HTTP is the burstiest of the three, as in Figure 2.
	if !(ps[2].CV() > ps[0].CV()) {
		t.Fatalf("HTTP CV %g should exceed PKT CV %g", ps[2].CV(), ps[0].CV())
	}
}

func TestHurstShortSeries(t *testing.T) {
	if !math.IsNaN(New("x", 1, []float64{1, 2, 3}).Hurst()) {
		t.Fatal("too-short series must give NaN")
	}
	// A constant series has zero std everywhere -> NaN.
	c := make([]float64, 256)
	for i := range c {
		c[i] = 5
	}
	if !math.IsNaN(New("c", 1, c).Hurst()) {
		t.Fatal("constant series must give NaN Hurst")
	}
}

// Property: ScaleToMean hits the requested mean exactly and Aggregate
// preserves the mean, for arbitrary positive rate vectors.
func TestScaleAggregateQuickProperties(t *testing.T) {
	f := func(seed int64, nRaw uint8, target float64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + int(nRaw%64)
		rates := make([]float64, n)
		for i := range rates {
			rates[i] = rng.Float64() * 100
		}
		rates[0] += 0.1 // ensure non-zero mean
		tr := New("q", 1, rates)
		if target < 0 {
			target = -target
		}
		target = math.Mod(target, 1000) + 0.01
		scaled := tr.ScaleToMean(target)
		if math.Abs(scaled.Mean()-target) > 1e-9*math.Max(1, target) {
			return false
		}
		agg := tr.Aggregate(4)
		if agg.Len() == 0 {
			return true
		}
		// Aggregate's mean equals the mean of the bins it covered.
		covered := tr.Rates[:agg.Len()*4]
		var s float64
		for _, x := range covered {
			s += x
		}
		return math.Abs(agg.Mean()-s/float64(len(covered))) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := New("x", 0.5, []float64{1.5, 2.25, 0})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "x")
	if err != nil {
		t.Fatal(err)
	}
	if back.Dt != 0.5 || back.Len() != 3 {
		t.Fatalf("round trip shape %d@%g", back.Len(), back.Dt)
	}
	for i := range tr.Rates {
		if back.Rates[i] != tr.Rates[i] {
			t.Fatalf("round trip rates %v vs %v", back.Rates, tr.Rates)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "time,rate\n",
		"short row":      "0\n",
		"bad rate":       "0,x\n",
		"bad time order": "5,1\n3,1\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in), "t"); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
	// Headerless input is accepted.
	tr, err := ReadCSV(strings.NewReader("0,1\n1,2\n"), "t")
	if err != nil || tr.Len() != 2 {
		t.Fatalf("headerless read failed: %v", err)
	}
	// Bad time in a data row.
	if _, err := ReadCSV(strings.NewReader("time,rate\nx,1\n"), "t"); err == nil {
		t.Fatal("bad time must error")
	}
}

func TestSingleRowCSVDefaultsDt(t *testing.T) {
	tr, err := ReadCSV(strings.NewReader("0,42\n"), "t")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Dt != 1 || tr.Rates[0] != 42 {
		t.Fatalf("single row trace %v@%g", tr.Rates, tr.Dt)
	}
}

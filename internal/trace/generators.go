package trace

import (
	"fmt"
	"math"
	"math/rand"
)

// PoissonConfig generates a stationary trace: each bin's rate is an
// independent Poisson(mean·dt) count divided by dt — the short-range-
// dependent null model the self-similar generators are contrasted with.
type PoissonConfig struct {
	Mean float64 // tuples/second
	Dt   float64
	Bins int
	Seed int64
}

// Poisson generates the trace described by the config.
func Poisson(cfg PoissonConfig) *Trace {
	rng := rand.New(rand.NewSource(cfg.Seed))
	rates := make([]float64, cfg.Bins)
	lam := cfg.Mean * cfg.Dt
	for i := range rates {
		rates[i] = float64(poissonSample(rng, lam)) / cfg.Dt
	}
	return New("poisson", cfg.Dt, rates)
}

// poissonSample draws a Poisson variate; it uses Knuth's product method for
// small λ and a normal approximation for large λ.
func poissonSample(rng *rand.Rand, lam float64) int64 {
	if lam <= 0 {
		return 0
	}
	if lam > 64 {
		x := math.Round(lam + math.Sqrt(lam)*rng.NormFloat64())
		if x < 0 {
			return 0
		}
		return int64(x)
	}
	l := math.Exp(-lam)
	var k int64
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// ParetoOnOffConfig superposes N independent ON/OFF sources whose sojourn
// times are Pareto-distributed with shape 1 < α < 2; the aggregate is
// long-range dependent with Hurst H = (3−α)/2 (Willinger et al.) — the
// standard construction of self-similar network traffic.
type ParetoOnOffConfig struct {
	Sources  int
	OnAlpha  float64 // Pareto shape of ON periods (1,2)
	OffAlpha float64 // Pareto shape of OFF periods (1,2)
	MeanOn   float64 // mean ON duration, seconds
	MeanOff  float64 // mean OFF duration, seconds
	PeakRate float64 // tuples/second while a source is ON
	Dt       float64
	Bins     int
	Seed     int64
}

// ParetoOnOff generates the aggregate trace of the configured sources.
func ParetoOnOff(cfg ParetoOnOffConfig) *Trace {
	rng := rand.New(rand.NewSource(cfg.Seed))
	rates := make([]float64, cfg.Bins)
	horizon := float64(cfg.Bins) * cfg.Dt
	xmOn := paretoScale(cfg.OnAlpha, cfg.MeanOn)
	xmOff := paretoScale(cfg.OffAlpha, cfg.MeanOff)
	for s := 0; s < cfg.Sources; s++ {
		// Random initial phase: start OFF for a uniform fraction of an OFF
		// period so sources are desynchronized.
		t := -rng.Float64() * cfg.MeanOff
		on := rng.Intn(2) == 0
		for t < horizon {
			var dur float64
			if on {
				dur = paretoSample(rng, cfg.OnAlpha, xmOn)
				addInterval(rates, cfg.Dt, t, t+dur, cfg.PeakRate)
			} else {
				dur = paretoSample(rng, cfg.OffAlpha, xmOff)
			}
			t += dur
			on = !on
		}
	}
	return New("pareto-onoff", cfg.Dt, rates)
}

// paretoScale returns the scale xm giving the requested mean for shape α>1.
func paretoScale(alpha, mean float64) float64 {
	return mean * (alpha - 1) / alpha
}

// paretoSample draws from Pareto(α, xm) by inversion.
func paretoSample(rng *rand.Rand, alpha, xm float64) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// addInterval adds rate to every bin overlapped by [a,b), proportionally to
// the overlap.
func addInterval(rates []float64, dt, a, b, rate float64) {
	if b <= 0 {
		return
	}
	if a < 0 {
		a = 0
	}
	lo := int(a / dt)
	hi := int(b / dt)
	for i := lo; i <= hi && i < len(rates); i++ {
		binA := float64(i) * dt
		binB := binA + dt
		overlap := math.Min(b, binB) - math.Max(a, binA)
		if overlap > 0 {
			rates[i] += rate * overlap / dt
		}
	}
}

// BModelConfig drives the b-model (binomial multiplicative cascade): the
// total volume is split recursively with bias b, producing the multifractal
// burstiness observed in wide-area traffic (Wang et al., "data traffic as
// cascades").
type BModelConfig struct {
	Bias   float64 // in (0.5, 1): larger is burstier
	Levels int     // trace has 2^Levels bins
	Total  float64 // total volume (tuples) spread over the trace
	Dt     float64
	Seed   int64
}

// BModel generates the cascade trace.
func BModel(cfg BModelConfig) *Trace {
	if cfg.Bias <= 0 || cfg.Bias >= 1 {
		panic(fmt.Sprintf("trace: b-model bias %g outside (0,1)", cfg.Bias))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := 1 << cfg.Levels
	rates := make([]float64, n)
	var split func(lo, hi int, volume float64)
	split = func(lo, hi int, volume float64) {
		if hi-lo == 1 {
			rates[lo] = volume / cfg.Dt
			return
		}
		mid := (lo + hi) / 2
		left := volume * cfg.Bias
		if rng.Intn(2) == 0 {
			left = volume * (1 - cfg.Bias)
		}
		split(lo, mid, left)
		split(mid, hi, volume-left)
	}
	split(0, n, cfg.Total)
	return New("bmodel", cfg.Dt, rates)
}

// DiurnalConfig shapes a sinusoidal daily profile with multiplicative
// noise — the paper's medium/long-term variation (stock-market close,
// temperature cycles).
type DiurnalConfig struct {
	Mean   float64
	Swing  float64 // peak deviation as a fraction of Mean (0..1)
	Period float64 // seconds per cycle
	Noise  float64 // multiplicative noise std
	Dt     float64
	Bins   int
	Seed   int64
}

// Diurnal generates the shaped trace.
func Diurnal(cfg DiurnalConfig) *Trace {
	rng := rand.New(rand.NewSource(cfg.Seed))
	rates := make([]float64, cfg.Bins)
	for i := range rates {
		t := float64(i) * cfg.Dt
		base := cfg.Mean * (1 + cfg.Swing*math.Sin(2*math.Pi*t/cfg.Period))
		r := base * (1 + cfg.Noise*rng.NormFloat64())
		if r < 0 {
			r = 0
		}
		rates[i] = r
	}
	return New("diurnal", cfg.Dt, rates)
}

// SpikesConfig injects flash-crowd spikes: events arriving as a Poisson
// process, each multiplying the rate by Amplitude with exponential decay.
type SpikesConfig struct {
	EventsPerHour float64
	Amplitude     float64 // peak multiplier added at the spike (e.g. 3 = 4x)
	DecaySeconds  float64
	Seed          int64
}

// WithSpikes returns a copy of t with flash-crowd spikes layered on.
func WithSpikes(t *Trace, cfg SpikesConfig) *Trace {
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := t.Clone()
	c.Name = t.Name + "+spikes"
	horizon := t.Duration()
	// Draw event times by exponential inter-arrivals.
	meanGap := 3600 / cfg.EventsPerHour
	for x := rng.ExpFloat64() * meanGap; x < horizon; x += rng.ExpFloat64() * meanGap {
		for i := range c.Rates {
			bt := float64(i) * t.Dt
			if bt < x {
				continue
			}
			boost := cfg.Amplitude * math.Exp(-(bt-x)/cfg.DecaySeconds)
			c.Rates[i] *= 1 + boost
		}
	}
	return c
}

// Mix returns the bin-wise weighted sum of traces (all must share Dt and
// length), used to compose e.g. cascade burstiness over a diurnal shape.
func Mix(name string, weights []float64, traces ...*Trace) (*Trace, error) {
	if len(weights) != len(traces) || len(traces) == 0 {
		return nil, fmt.Errorf("trace: Mix needs matching non-empty weights and traces")
	}
	n := traces[0].Len()
	dt := traces[0].Dt
	for _, tr := range traces[1:] {
		if tr.Len() != n || tr.Dt != dt {
			return nil, fmt.Errorf("trace: Mix shape mismatch (%d@%g vs %d@%g)", tr.Len(), tr.Dt, n, dt)
		}
	}
	rates := make([]float64, n)
	for i := range rates {
		for j, tr := range traces {
			rates[i] += weights[j] * tr.Rates[i]
		}
	}
	return New(name, dt, rates), nil
}

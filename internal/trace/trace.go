// Package trace builds and analyzes the input-rate time series that drive
// every experiment. The paper uses three real traces from the Internet
// Traffic Archive — a wide-area packet trace (PKT), a TCP connection trace
// (TCP) and an HTTP request trace (HTTP) — which are not redistributable
// here, so this package provides synthetic equivalents with the properties
// the experiments actually depend on: burstiness at all time scales
// (self-similarity via superposed Pareto ON/OFF sources and b-model
// cascades), diurnal patterns, and flash-crowd spikes (Section 1's
// medium/long-term variations).
package trace

import (
	"fmt"
	"math"

	"rodsp/internal/stats"
)

// Trace is a rate time series: Rates[i] is the average arrival rate
// (tuples/second) during bin i of width Dt seconds.
type Trace struct {
	Name  string
	Dt    float64
	Rates []float64
}

// New returns a named trace over the given bins.
func New(name string, dt float64, rates []float64) *Trace {
	return &Trace{Name: name, Dt: dt, Rates: rates}
}

// Len returns the number of bins.
func (t *Trace) Len() int { return len(t.Rates) }

// Duration returns the covered time span in seconds.
func (t *Trace) Duration() float64 { return float64(len(t.Rates)) * t.Dt }

// RateAt returns the rate at absolute time x (clamping to the edges).
func (t *Trace) RateAt(x float64) float64 {
	if len(t.Rates) == 0 {
		return 0
	}
	i := int(x / t.Dt)
	if i < 0 {
		i = 0
	}
	if i >= len(t.Rates) {
		i = len(t.Rates) - 1
	}
	return t.Rates[i]
}

// Mean returns the average rate.
func (t *Trace) Mean() float64 { return stats.Mean(t.Rates) }

// Std returns the population standard deviation of the rate.
func (t *Trace) Std() float64 { return stats.Std(t.Rates) }

// CV returns the coefficient of variation (std of the normalized rate —
// the quantity Figure 2 annotates).
func (t *Trace) CV() float64 {
	m := t.Mean()
	if m == 0 {
		return 0
	}
	return t.Std() / m
}

// Clone returns a deep copy.
func (t *Trace) Clone() *Trace {
	r := make([]float64, len(t.Rates))
	copy(r, t.Rates)
	return &Trace{Name: t.Name, Dt: t.Dt, Rates: r}
}

// Normalized returns a copy scaled to mean 1 (Figure 2's "normalized
// stream rates"). A zero-mean trace is returned unchanged.
func (t *Trace) Normalized() *Trace {
	c := t.Clone()
	m := t.Mean()
	if m == 0 {
		return c
	}
	for i := range c.Rates {
		c.Rates[i] /= m
	}
	return c
}

// ScaleToMean returns a copy rescaled to the target mean rate.
func (t *Trace) ScaleToMean(mean float64) *Trace {
	c := t.Normalized()
	for i := range c.Rates {
		c.Rates[i] *= mean
	}
	return c
}

// Aggregate returns the trace re-binned at k× coarser resolution (used to
// study variability across time scales; self-similar traffic keeps a high
// CV as k grows).
func (t *Trace) Aggregate(k int) *Trace {
	if k <= 1 {
		return t.Clone()
	}
	n := len(t.Rates) / k
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < k; j++ {
			s += t.Rates[i*k+j]
		}
		out[i] = s / float64(k)
	}
	return &Trace{Name: fmt.Sprintf("%s/agg%d", t.Name, k), Dt: t.Dt * float64(k), Rates: out}
}

// Max returns the peak rate.
func (t *Trace) Max() float64 {
	m := 0.0
	for _, r := range t.Rates {
		if r > m {
			m = r
		}
	}
	return m
}

// PeakToMean returns the peak-to-mean ratio, a burstiness summary.
func (t *Trace) PeakToMean() float64 {
	m := t.Mean()
	if m == 0 {
		return 0
	}
	return t.Max() / m
}

// Hurst estimates the Hurst exponent by rescaled-range (R/S) analysis:
// slope of log(R/S) against log(window) over power-of-two windows. Values
// near 0.5 indicate short-range dependence; self-similar traffic sits
// noticeably above 0.5.
func (t *Trace) Hurst() float64 {
	n := len(t.Rates)
	if n < 16 {
		return math.NaN()
	}
	var logN, logRS []float64
	for w := 8; w <= n/2; w *= 2 {
		var rsSum float64
		var count int
		for start := 0; start+w <= n; start += w {
			rs := rescaledRange(t.Rates[start : start+w])
			if !math.IsNaN(rs) && rs > 0 {
				rsSum += rs
				count++
			}
		}
		if count == 0 {
			continue
		}
		logN = append(logN, math.Log(float64(w)))
		logRS = append(logRS, math.Log(rsSum/float64(count)))
	}
	if len(logN) < 2 {
		return math.NaN()
	}
	return slope(logN, logRS)
}

func rescaledRange(xs []float64) float64 {
	m := stats.Mean(xs)
	var cum, minC, maxC float64
	for _, x := range xs {
		cum += x - m
		if cum < minC {
			minC = cum
		}
		if cum > maxC {
			maxC = cum
		}
	}
	s := stats.Std(xs)
	if s == 0 {
		return math.NaN()
	}
	return (maxC - minC) / s
}

// slope returns the least-squares slope of ys against xs.
func slope(xs, ys []float64) float64 {
	mx, my := stats.Mean(xs), stats.Mean(ys)
	var num, den float64
	for i := range xs {
		num += (xs[i] - mx) * (ys[i] - my)
		den += (xs[i] - mx) * (xs[i] - mx)
	}
	if den == 0 {
		return 0
	}
	return num / den
}

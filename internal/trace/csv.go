package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV serializes a trace as "time,rate" rows with a header.
func WriteCSV(w io.Writer, t *Trace) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time", "rate"}); err != nil {
		return fmt.Errorf("trace: writing header: %w", err)
	}
	for i, r := range t.Rates {
		rec := []string{
			strconv.FormatFloat(float64(i)*t.Dt, 'g', -1, 64),
			strconv.FormatFloat(r, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: writing row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a "time,rate" trace. The bin width is inferred from the
// first two timestamps (1.0 for a single-row trace). A header row is
// skipped if present.
func ReadCSV(r io.Reader, name string) (*Trace, error) {
	cr := csv.NewReader(r)
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: reading csv: %w", err)
	}
	if len(recs) > 0 {
		if _, err := strconv.ParseFloat(recs[0][0], 64); err != nil {
			recs = recs[1:] // header
		}
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("trace: csv has no data rows")
	}
	times := make([]float64, len(recs))
	rates := make([]float64, len(recs))
	for i, rec := range recs {
		if len(rec) < 2 {
			return nil, fmt.Errorf("trace: row %d has %d fields, want 2", i, len(rec))
		}
		t, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d time: %w", i, err)
		}
		v, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d rate: %w", i, err)
		}
		times[i] = t
		rates[i] = v
	}
	dt := 1.0
	if len(times) > 1 {
		dt = times[1] - times[0]
		if dt <= 0 {
			return nil, fmt.Errorf("trace: non-increasing timestamps (%g then %g)", times[0], times[1])
		}
	}
	return New(name, dt, rates), nil
}

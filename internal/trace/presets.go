package trace

// Presets standing in for the paper's three Internet Traffic Archive traces
// (Figure 2). Each is normalized to mean 1 so callers scale it to whatever
// mean rate an experiment needs. The three differ in burstiness the same
// way the paper's figure shows: PKT is the tamest, TCP intermediate, HTTP
// the spikiest. All are self-similar (Hurst well above 0.5).

// PKT approximates a wide-area packet trace: dense aggregate of many
// sources, moderate variability.
func PKT(seed int64) *Trace {
	t := ParetoOnOff(ParetoOnOffConfig{
		Sources:  60,
		OnAlpha:  1.4,
		OffAlpha: 1.6,
		MeanOn:   2.0,
		MeanOff:  6.0,
		PeakRate: 1,
		Dt:       1,
		Bins:     4096,
		Seed:     seed,
	})
	t.Name = "PKT"
	return t.Normalized()
}

// TCP approximates a wide-area TCP connection-arrival trace: fewer, heavier
// sources, noticeably burstier.
func TCP(seed int64) *Trace {
	t := ParetoOnOff(ParetoOnOffConfig{
		Sources:  18,
		OnAlpha:  1.3,
		OffAlpha: 1.5,
		MeanOn:   1.5,
		MeanOff:  9.0,
		PeakRate: 1,
		Dt:       1,
		Bins:     4096,
		Seed:     seed + 1,
	})
	t.Name = "TCP"
	return t.Normalized()
}

// HTTP approximates an HTTP request trace: multifractal cascade burstiness
// with flash-crowd spikes — the most variable of the three.
func HTTP(seed int64) *Trace {
	base := BModel(BModelConfig{
		Bias:   0.58,
		Levels: 12,
		Total:  4096,
		Dt:     1,
		Seed:   seed + 2,
	})
	t := WithSpikes(base, SpikesConfig{
		EventsPerHour: 6,
		Amplitude:     1.2,
		DecaySeconds:  60,
		Seed:          seed + 3,
	})
	t.Name = "HTTP"
	return t.Normalized()
}

// Presets returns the three named traces with a common seed.
func Presets(seed int64) []*Trace {
	return []*Trace{PKT(seed), TCP(seed), HTTP(seed)}
}

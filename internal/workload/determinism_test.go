package workload

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"rodsp/internal/query"
	"rodsp/internal/trace"
)

// Seeded determinism regression tests: the same seed must reproduce the
// same workload byte for byte, independent of run order and parallelism.
// Every conformance scenario, lockstep comparison and failing-seed
// artifact relies on this — a generator that drifts across runs makes
// "re-run the failing seed" meaningless.

func graphFingerprint(g *query.Graph) string {
	s := fmt.Sprintf("inputs=%v;", g.Inputs())
	for _, op := range g.Ops() {
		s += fmt.Sprintf("op%d(%s,%g,%g,in=%v,out=%d);",
			op.ID, op.Kind, op.Cost, op.Selectivity, op.Inputs, op.Out)
	}
	return s
}

func traceBytes(ts []*trace.Trace) string {
	s := ""
	for _, tr := range ts {
		s += fmt.Sprintf("%s dt=%g rates=%v;", tr.Name, tr.Dt, tr.Rates)
	}
	return s
}

// Stronger than TestRandomTreesDeterministic (which compares load-model
// coefficients): the full structural fingerprint must match.
func TestRandomTreesByteIdentical(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		cfg := TreeConfig{Streams: 3, OpsPerStream: 5, Seed: seed}
		a, err := RandomTrees(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RandomTrees(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if graphFingerprint(a) != graphFingerprint(b) {
			t.Fatalf("seed %d: two RandomTrees runs differ:\n%s\n%s",
				seed, graphFingerprint(a), graphFingerprint(b))
		}
	}
}

func TestScaledTracesDeterministic(t *testing.T) {
	g, err := RandomTrees(TreeConfig{Streams: 2, OpsPerStream: 4, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	lm, err := query.BuildLoadModel(g)
	if err != nil {
		t.Fatal(err)
	}
	run := func() string {
		traces, rates, err := ScaledTraces(lm, 4, 0.6, 99)
		if err != nil {
			t.Fatal(err)
		}
		return traceBytes(traces) + fmt.Sprintf("rates=%v", rates)
	}
	first := run()
	for i := 0; i < 3; i++ {
		if got := run(); got != first {
			t.Fatalf("ScaledTraces drifted on repeat %d", i)
		}
	}
}

func TestPresetTracesDeterministicAcrossGOMAXPROCS(t *testing.T) {
	render := func() string {
		return traceBytes(trace.Presets(7))
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	runtime.GOMAXPROCS(1)
	single := render()
	runtime.GOMAXPROCS(runtime.NumCPU())
	parallel := render()
	if single != parallel {
		t.Fatal("preset traces depend on GOMAXPROCS")
	}
}

func TestRandomRatesDeterministic(t *testing.T) {
	a := RandomRates(6, 100, rand.New(rand.NewSource(5)))
	b := RandomRates(6, 100, rand.New(rand.NewSource(5)))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("RandomRates diverged at %d: %g vs %g", i, a[i], b[i])
		}
	}
}

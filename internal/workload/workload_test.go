package workload

import (
	"math"
	"math/rand"
	"testing"

	"rodsp/internal/mat"
	"rodsp/internal/query"
	"rodsp/internal/trace"
)

func TestRandomTreesShape(t *testing.T) {
	g, err := RandomTrees(TreeConfig{Streams: 4, OpsPerStream: 25, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumInputs() != 4 {
		t.Fatalf("inputs = %d", g.NumInputs())
	}
	if g.NumOps() != 100 {
		t.Fatalf("ops = %d, want exactly 100", g.NumOps())
	}
	// Every op is a delay op with the Section 7.1 parameter ranges.
	for _, op := range g.Ops() {
		if op.Kind != query.Delay {
			t.Fatalf("op %s kind %v", op.Name, op.Kind)
		}
		if op.Cost < 0.0001 || op.Cost > 0.001 {
			t.Fatalf("cost %g outside [0.1ms, 1ms]", op.Cost)
		}
		if op.Selectivity < 0.5 || op.Selectivity > 1 {
			t.Fatalf("selectivity %g outside [0.5, 1]", op.Selectivity)
		}
	}
	// Roughly half the selectivities are exactly 1.
	ones := 0
	for _, op := range g.Ops() {
		if op.Selectivity == 1 {
			ones++
		}
	}
	if ones < 30 || ones > 70 {
		t.Fatalf("selectivity-1 count = %d of 100, want ~50", ones)
	}
	// The load model must have exactly d columns, all positive sums.
	lm, err := query.BuildLoadModel(g)
	if err != nil {
		t.Fatal(err)
	}
	if lm.D() != 4 {
		t.Fatalf("model dims = %d", lm.D())
	}
	for k, l := range lm.CoefSums() {
		if l <= 0 {
			t.Fatalf("stream %d total coefficient %g", k, l)
		}
	}
}

func TestRandomTreesDeterministic(t *testing.T) {
	a, _ := RandomTrees(TreeConfig{Streams: 2, OpsPerStream: 10, Seed: 9})
	b, _ := RandomTrees(TreeConfig{Streams: 2, OpsPerStream: 10, Seed: 9})
	la, _ := query.BuildLoadModel(a)
	lb, _ := query.BuildLoadModel(b)
	if !la.Coef.Equal(lb.Coef, 0) {
		t.Fatal("same seed must reproduce the workload")
	}
	c, _ := RandomTrees(TreeConfig{Streams: 2, OpsPerStream: 10, Seed: 10})
	lc, _ := query.BuildLoadModel(c)
	if la.Coef.Equal(lc.Coef, 0) {
		t.Fatal("different seeds should differ")
	}
}

func TestRandomTreesErrors(t *testing.T) {
	if _, err := RandomTrees(TreeConfig{Streams: 0, OpsPerStream: 5}); err == nil {
		t.Fatal("zero streams must error")
	}
	if _, err := RandomTrees(TreeConfig{Streams: 1, OpsPerStream: 0}); err == nil {
		t.Fatal("zero ops must error")
	}
}

func TestTrafficMonitoring(t *testing.T) {
	g, err := TrafficMonitoring(MonitoringConfig{Streams: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumInputs() != 5 {
		t.Fatalf("inputs = %d", g.NumInputs())
	}
	// 5 ops per stream + 4 shared = 29.
	if g.NumOps() != 29 {
		t.Fatalf("ops = %d, want 29", g.NumOps())
	}
	// Aggregation-heavy: it must contain aggregates and a union.
	aggs, unions := 0, 0
	for _, op := range g.Ops() {
		switch op.Kind {
		case query.Aggregate:
			aggs++
		case query.Union:
			unions++
		}
	}
	if aggs < 6 || unions != 1 {
		t.Fatalf("aggs=%d unions=%d", aggs, unions)
	}
	if _, err := query.BuildLoadModel(g); err != nil {
		t.Fatal(err)
	}
	if _, err := TrafficMonitoring(MonitoringConfig{}); err == nil {
		t.Fatal("zero streams must error")
	}
}

func TestCompliance(t *testing.T) {
	g, err := Compliance(ComplianceConfig{Streams: 3, Rules: 30, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// 2 shared per stream + 3 per rule = 6 + 90 = 96: wide, not deep.
	if g.NumOps() != 96 {
		t.Fatalf("ops = %d, want 96", g.NumOps())
	}
	// Shared sub-expressions: enrich streams feed many rules.
	maxFan := 0
	for _, s := range g.Streams() {
		if n := len(g.Consumers(s.ID)); n > maxFan {
			maxFan = n
		}
	}
	if maxFan < 5 {
		t.Fatalf("max fan-out = %d, want heavy sharing", maxFan)
	}
	if _, err := Compliance(ComplianceConfig{Streams: 1}); err == nil {
		t.Fatal("zero rules must error")
	}
}

func TestJoinPipelines(t *testing.T) {
	g, err := JoinPipelines(JoinConfig{Pairs: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumInputs() != 6 {
		t.Fatalf("inputs = %d", g.NumInputs())
	}
	lm, err := query.BuildLoadModel(g)
	if err != nil {
		t.Fatal(err)
	}
	// 6 input variables + 3 join cuts.
	if lm.D() != 9 {
		t.Fatalf("model dims = %d, want 9", lm.D())
	}
	if lm.NumCuts() != 3 {
		t.Fatalf("cuts = %d, want 3", lm.NumCuts())
	}
	if _, err := JoinPipelines(JoinConfig{}); err == nil {
		t.Fatal("zero pairs must error")
	}
}

func TestRandomRates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := RandomRates(5, 10, rng)
	if len(r) != 5 {
		t.Fatalf("len = %d", len(r))
	}
	for _, x := range r {
		if x < 0 || x > 10 {
			t.Fatalf("rate %g outside [0,10]", x)
		}
	}
}

func TestRateSeriesFromTraces(t *testing.T) {
	trs := []*trace.Trace{
		trace.New("a", 1, []float64{1, 2, 3, 4}),
		trace.New("b", 1, []float64{10, 20, 30, 40}),
	}
	m, err := RateSeriesFromTraces(trs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 8 || m.Cols != 2 {
		t.Fatalf("shape %dx%d", m.Rows, m.Cols)
	}
	// First row samples the start of each trace.
	if m.At(0, 0) != 1 || m.At(0, 1) != 10 {
		t.Fatalf("first row %v", m.Row(0))
	}
	if _, err := RateSeriesFromTraces(nil, 8); err == nil {
		t.Fatal("no traces must error")
	}
	if _, err := RateSeriesFromTraces(trs, 1); err == nil {
		t.Fatal("single step must error")
	}
}

func TestRandomRateSeries(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := RandomRateSeries(3, 10, 5, rng)
	if m.Rows != 10 || m.Cols != 3 {
		t.Fatalf("shape %dx%d", m.Rows, m.Cols)
	}
}

func TestScaledTracesHitTargetUtilization(t *testing.T) {
	g, err := TrafficMonitoring(MonitoringConfig{Streams: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	lm, err := query.BuildLoadModel(g)
	if err != nil {
		t.Fatal(err)
	}
	const capTotal, target = 4.0, 0.6
	traces, means, err := ScaledTraces(lm, capTotal, target, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 3 || len(means) != 3 {
		t.Fatalf("got %d traces", len(traces))
	}
	loads, err := lm.ActualLoads(means)
	if err != nil {
		t.Fatal(err)
	}
	got := loads.Sum() / capTotal
	if math.Abs(got-target) > 0.02 {
		t.Fatalf("mean utilization = %g, want %g", got, target)
	}
	for _, tr := range traces {
		if math.Abs(tr.Mean()-means[0]) > 1e-6 {
			t.Fatalf("trace mean %g, want %g", tr.Mean(), means[0])
		}
	}
}

func TestScaledTracesJoinGraph(t *testing.T) {
	g, err := JoinPipelines(JoinConfig{Pairs: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	lm, err := query.BuildLoadModel(g)
	if err != nil {
		t.Fatal(err)
	}
	const capTotal, target = 2.0, 0.5
	_, means, err := ScaledTraces(lm, capTotal, target, 1)
	if err != nil {
		t.Fatal(err)
	}
	loads, err := lm.ActualLoads(means)
	if err != nil {
		t.Fatal(err)
	}
	got := loads.Sum() / capTotal
	if math.Abs(got-target) > 0.02 {
		t.Fatalf("nonlinear fixed point missed: %g, want %g", got, target)
	}
}

func TestScaledTracesErrors(t *testing.T) {
	b := query.NewBuilder()
	in := b.Input("i")
	b.Map("m", 0.001, in)
	g := b.MustBuild()
	lm, _ := query.BuildLoadModel(g)
	if _, _, err := ScaledTraces(lm, 1, 0.5, 1); err != nil {
		t.Fatalf("valid graph errored: %v", err)
	}
	empty := &query.LoadModel{G: g}
	_ = empty
}

func TestMat(t *testing.T) {
	// Keep the mat import honest in this package's tests.
	if mat.VecOf(1, 2).Sum() != 3 {
		t.Fatal("mat broken")
	}
}

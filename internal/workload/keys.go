package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"rodsp/internal/query"
)

// ZipfKeys returns a seeded Zipf(s) key generator over [0, domain): the
// skewed key distribution of "Parallel Stream Processing Against Workload
// Skewness and Variance" (PAPERS.md), under which uniform hash partitioning
// concentrates load on whichever shard draws the hot keys. The generator is
// deterministic: the same seed yields the same key sequence.
func ZipfKeys(seed int64, s float64, domain uint64) (func() uint64, error) {
	if s <= 1 {
		return nil, fmt.Errorf("workload: Zipf exponent must exceed 1, got %g", s)
	}
	if domain < 2 {
		return nil, fmt.Errorf("workload: Zipf key domain must hold at least 2 keys, got %d", domain)
	}
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, domain-1)
	if z == nil {
		return nil, fmt.Errorf("workload: invalid Zipf parameters (s=%g, domain=%d)", s, domain)
	}
	return z.Uint64, nil
}

// UniformKeys returns a seeded uniform key generator over [0, domain).
func UniformKeys(seed int64, domain uint64) (func() uint64, error) {
	if domain < 1 {
		return nil, fmt.Errorf("workload: key domain must be positive, got %d", domain)
	}
	rng := rand.New(rand.NewSource(seed))
	return func() uint64 { return rng.Uint64() % domain }, nil
}

// SlotRates draws n keys from gen and histograms them over the partition
// table's slots (query.SlotOfKey), returning each slot's fraction of the
// total — the observed per-slot rate profile skew-aware assignment packs.
func SlotRates(gen func() uint64, n int) []float64 {
	rates := make([]float64, query.ShardSlots)
	if n <= 0 {
		return rates
	}
	for i := 0; i < n; i++ {
		rates[query.SlotOfKey(gen())]++
	}
	for s := range rates {
		rates[s] /= float64(n)
	}
	return rates
}

// AssignSkewAware bin-packs the partition table's slots onto k shards by
// observed per-slot rates: slots sorted by rate descending (index ascending
// on ties) go greedily to the least-loaded shard (LPT scheduling). The
// result is compared against the uniform assignment and the better of the
// two is returned, so the skew-aware max-shard load never exceeds uniform
// hashing's. Deterministic for a fixed rates vector.
func AssignSkewAware(rates []float64, k int) []int {
	if k < 1 {
		k = 1
	}
	uniform := query.UniformSlots(k)
	if len(rates) != query.ShardSlots || k == 1 {
		return uniform
	}
	order := make([]int, len(rates))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return rates[order[a]] > rates[order[b]] })
	assign := make([]int, len(rates))
	load := make([]float64, k)
	for _, slot := range order {
		best := 0
		for sh := 1; sh < k; sh++ {
			if load[sh] < load[best] {
				best = sh
			}
		}
		assign[slot] = best
		load[best] += rates[slot]
	}
	if MaxShardLoad(uniform, rates, k) < MaxShardLoad(assign, rates, k) {
		return uniform
	}
	return assign
}

// MaxShardLoad returns the heaviest shard's total slot rate under the given
// slot→shard assignment.
func MaxShardLoad(assign []int, rates []float64, k int) float64 {
	load := make([]float64, k)
	for slot, sh := range assign {
		if sh >= 0 && sh < k && slot < len(rates) {
			load[sh] += rates[slot]
		}
	}
	max := 0.0
	for _, l := range load {
		if l > max {
			max = l
		}
	}
	return max
}

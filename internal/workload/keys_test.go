package workload

import (
	"math/rand"
	"testing"

	"rodsp/internal/query"
)

func TestZipfKeysSeededDeterminism(t *testing.T) {
	a, err := ZipfKeys(42, 1.1, 1024)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ZipfKeys(42, 1.1, 1024)
	if err != nil {
		t.Fatal(err)
	}
	c, err := ZipfKeys(43, 1.1, 1024)
	if err != nil {
		t.Fatal(err)
	}
	same, diff := true, false
	for i := 0; i < 10000; i++ {
		ka, kb, kc := a(), b(), c()
		if ka >= 1024 {
			t.Fatalf("key %d outside domain", ka)
		}
		if ka != kb {
			same = false
		}
		if ka != kc {
			diff = true
		}
	}
	if !same {
		t.Fatal("same seed produced different key sequences")
	}
	if !diff {
		t.Fatal("different seeds produced identical key sequences")
	}
	if _, err := ZipfKeys(1, 1.0, 1024); err == nil {
		t.Fatal("s=1 must be rejected")
	}
}

func TestSkewAwareNeverWorseThanUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		rates := make([]float64, query.ShardSlots)
		total := 0.0
		for i := range rates {
			rates[i] = rng.Float64()
			if rng.Intn(8) == 0 { // spiky slots
				rates[i] *= 20
			}
			total += rates[i]
		}
		for i := range rates {
			rates[i] /= total
		}
		for _, k := range []int{2, 3, 4, 8} {
			uni := MaxShardLoad(query.UniformSlots(k), rates, k)
			skew := MaxShardLoad(AssignSkewAware(rates, k), rates, k)
			if skew > uni+1e-12 {
				t.Fatalf("trial %d k=%d: skew-aware max load %g exceeds uniform %g", trial, k, skew, uni)
			}
		}
	}
}

func TestSkewAwareBeatsUniformUnderZipf(t *testing.T) {
	gen, err := ZipfKeys(11, 1.1, 4096)
	if err != nil {
		t.Fatal(err)
	}
	rates := SlotRates(gen, 200000)
	const k = 4
	uni := MaxShardLoad(query.UniformSlots(k), rates, k)
	skew := MaxShardLoad(AssignSkewAware(rates, k), rates, k)
	if skew >= uni {
		t.Fatalf("under Zipf(1.1) skew-aware must strictly beat uniform: %g vs %g", skew, uni)
	}
	// And the assignment covers all shards.
	seen := map[int]bool{}
	for _, sh := range AssignSkewAware(rates, k) {
		seen[sh] = true
	}
	if len(seen) != k {
		t.Fatalf("assignment uses %d of %d shards", len(seen), k)
	}
}

func TestAssignSkewAwareDeterministic(t *testing.T) {
	gen, _ := ZipfKeys(3, 1.1, 512)
	rates := SlotRates(gen, 50000)
	a := AssignSkewAware(rates, 4)
	b := AssignSkewAware(rates, 4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("assignment not deterministic at slot %d", i)
		}
	}
}

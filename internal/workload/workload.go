// Package workload generates the query graphs the experiments run on: the
// paper's random operator trees (Section 7.1), the aggregation-heavy
// traffic-monitoring queries, the wide compliance-rule graphs the paper's
// financial-services discussion motivates (Section 7.3.1), and join-bearing
// graphs for the nonlinear experiments.
package workload

import (
	"fmt"
	"math/rand"

	"rodsp/internal/mat"
	"rodsp/internal/query"
	"rodsp/internal/trace"
)

// TreeConfig drives the random operator-tree generator of Section 7.1:
// one tree per input stream, each tree node spawning one to three
// downstream operators with equal probability; delay-operator costs uniform
// in [0.1 ms, 1 ms]; half the selectivities are 1, the rest uniform in
// [0.5, 1].
type TreeConfig struct {
	Streams      int
	OpsPerStream int
	Seed         int64
}

// RandomTrees generates the workload graph.
func RandomTrees(cfg TreeConfig) (*query.Graph, error) {
	if cfg.Streams <= 0 || cfg.OpsPerStream <= 0 {
		return nil, fmt.Errorf("workload: need positive streams (%d) and ops per stream (%d)", cfg.Streams, cfg.OpsPerStream)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := query.NewBuilder()
	for s := 0; s < cfg.Streams; s++ {
		in := b.Input(fmt.Sprintf("I%d", s))
		frontier := []query.StreamID{in}
		budget := cfg.OpsPerStream
		for budget > 0 {
			cur := frontier[0]
			frontier = frontier[1:]
			children := 1 + rng.Intn(3)
			if children > budget {
				children = budget
			}
			for c := 0; c < children; c++ {
				out := b.Delay("", delayCost(rng), delaySelectivity(rng), cur)
				frontier = append(frontier, out)
				budget--
			}
			if len(frontier) == 0 { // cannot happen, but keep the loop safe
				break
			}
		}
	}
	return b.Build()
}

// delayCost draws the Section 7.1 per-tuple cost: uniform 0.1 ms to 1 ms.
func delayCost(rng *rand.Rand) float64 { return 0.0001 + rng.Float64()*0.0009 }

// delaySelectivity draws the Section 7.1 selectivity: half are exactly 1,
// the rest uniform in [0.5, 1).
func delaySelectivity(rng *rand.Rand) float64 {
	if rng.Intn(2) == 0 {
		return 1
	}
	return 0.5 + rng.Float64()*0.5
}

// MonitoringConfig shapes the aggregation-heavy traffic-monitoring workload
// the paper evaluates on (Section 7): per input stream a filter→map→window
// aggregate chain, unioned across streams into shared report aggregates.
type MonitoringConfig struct {
	Streams int
	Seed    int64
}

// TrafficMonitoring builds the monitoring graph.
func TrafficMonitoring(cfg MonitoringConfig) (*query.Graph, error) {
	if cfg.Streams <= 0 {
		return nil, fmt.Errorf("workload: need positive streams, got %d", cfg.Streams)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := query.NewBuilder()
	var perStream []query.StreamID
	for s := 0; s < cfg.Streams; s++ {
		in := b.Input(fmt.Sprintf("link%d", s))
		f := b.Filter(fmt.Sprintf("valid%d", s), 0.0002+rng.Float64()*0.0002, 0.7+rng.Float64()*0.25, in)
		m := b.Map(fmt.Sprintf("extract%d", s), 0.0003+rng.Float64()*0.0003, f)
		// Per-link 5-second counters.
		agg := b.Aggregate(fmt.Sprintf("cnt%d", s), 0.0004+rng.Float64()*0.0004, 0.05+rng.Float64()*0.1, 5, m)
		// Heavy-hitter detector branch per link.
		hh := b.Filter(fmt.Sprintf("hh%d", s), 0.0002+rng.Float64()*0.0002, 0.05+rng.Float64()*0.1, m)
		b.Map(fmt.Sprintf("alert%d", s), 0.0002, hh)
		perStream = append(perStream, agg)
	}
	// Global roll-up: union the per-link counters, then a 60s aggregate and
	// a top-talkers filter.
	u := b.Union("merge", 0.0001, perStream...)
	roll := b.Aggregate("rollup", 0.0008, 0.2, 60, u)
	top := b.Filter("top", 0.0002, 0.3, roll)
	b.Map("report", 0.0002, top)
	return b.Build()
}

// ComplianceConfig shapes the wide compliance-rule workload: shared
// preprocessing per input feeding many narrow rule pipelines (the paper's
// "25 operators for 3 compliance rules" proof-of-concept scaled up).
type ComplianceConfig struct {
	Streams int
	Rules   int
	Seed    int64
}

// Compliance builds the rule graph.
func Compliance(cfg ComplianceConfig) (*query.Graph, error) {
	if cfg.Streams <= 0 || cfg.Rules <= 0 {
		return nil, fmt.Errorf("workload: need positive streams (%d) and rules (%d)", cfg.Streams, cfg.Rules)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := query.NewBuilder()
	// Shared sub-expressions: normalize + enrich per input stream.
	shared := make([]query.StreamID, cfg.Streams)
	for s := 0; s < cfg.Streams; s++ {
		in := b.Input(fmt.Sprintf("orders%d", s))
		norm := b.Map(fmt.Sprintf("normalize%d", s), 0.0004, in)
		shared[s] = b.Map(fmt.Sprintf("enrich%d", s), 0.0005, norm)
	}
	// Each rule: filter on one shared feed, window-aggregate, threshold.
	for r := 0; r < cfg.Rules; r++ {
		src := shared[rng.Intn(len(shared))]
		f := b.Filter(fmt.Sprintf("rule%d.match", r), 0.0002+rng.Float64()*0.0004, 0.1+rng.Float64()*0.5, src)
		a := b.Aggregate(fmt.Sprintf("rule%d.window", r), 0.0003+rng.Float64()*0.0005, 0.1+rng.Float64()*0.3, 10, f)
		b.Filter(fmt.Sprintf("rule%d.breach", r), 0.0002, 0.05+rng.Float64()*0.2, a)
	}
	return b.Build()
}

// JoinConfig shapes the nonlinear workload: pairs of filtered streams
// joined over time windows, with downstream processing on the join output.
type JoinConfig struct {
	Pairs int
	Seed  int64
}

// JoinPipelines builds the join workload (2·Pairs input streams).
func JoinPipelines(cfg JoinConfig) (*query.Graph, error) {
	if cfg.Pairs <= 0 {
		return nil, fmt.Errorf("workload: need positive pairs, got %d", cfg.Pairs)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := query.NewBuilder()
	for p := 0; p < cfg.Pairs; p++ {
		l := b.Input(fmt.Sprintf("L%d", p))
		r := b.Input(fmt.Sprintf("R%d", p))
		fl := b.Filter(fmt.Sprintf("fl%d", p), 0.0003, 0.5+rng.Float64()*0.4, l)
		fr := b.Filter(fmt.Sprintf("fr%d", p), 0.0003, 0.5+rng.Float64()*0.4, r)
		j := b.Join(fmt.Sprintf("join%d", p), 0.00002+rng.Float64()*0.00002, 0.02+rng.Float64()*0.05,
			0.5+rng.Float64(), fl, fr)
		m := b.Map(fmt.Sprintf("post%d", p), 0.0004, j)
		b.Aggregate(fmt.Sprintf("stats%d", p), 0.0005, 0.2, 5, m)
	}
	return b.Build()
}

// RandomRates draws a uniformly random rate point with the given per-stream
// ceiling — the "random input stream rates" the load-balancing baselines
// are given (Section 7.3.1).
func RandomRates(d int, ceil float64, rng *rand.Rand) mat.Vec {
	r := make(mat.Vec, d)
	for k := range r {
		r[k] = rng.Float64() * ceil
	}
	return r
}

// RateSeriesFromTraces builds a T×d rate matrix (one row per time step) by
// sampling each trace at its own bin resolution — the time series the
// correlation-based baseline consumes.
func RateSeriesFromTraces(traces []*trace.Trace, steps int) (*mat.Matrix, error) {
	if len(traces) == 0 || steps < 2 {
		return nil, fmt.Errorf("workload: need traces and at least 2 steps")
	}
	m := mat.NewMatrix(steps, len(traces))
	for t := 0; t < steps; t++ {
		for k, tr := range traces {
			// Stretch each trace over the step horizon.
			x := float64(t) / float64(steps) * tr.Duration()
			m.Set(t, k, tr.RateAt(x))
		}
	}
	return m, nil
}

// RandomRateSeries draws T×d i.i.d. rate rows (the randomized series used
// when no trace is specified for the correlation baseline).
func RandomRateSeries(d, steps int, ceil float64, rng *rand.Rand) *mat.Matrix {
	m := mat.NewMatrix(steps, d)
	for i := range m.Data {
		m.Data[i] = rng.Float64() * ceil
	}
	return m
}

// ScaledTraces returns one preset-style trace per input stream, normalized
// and scaled so that driving the graph at those mean rates yields the given
// average system utilization (mean total load / total capacity).
func ScaledTraces(lm *query.LoadModel, capacityTotal, targetUtil float64, seed int64) ([]*trace.Trace, mat.Vec, error) {
	d := lm.G.NumInputs()
	if d == 0 {
		return nil, nil, fmt.Errorf("workload: graph has no inputs")
	}
	presets := trace.Presets(seed)
	traces := make([]*trace.Trace, d)
	for k := 0; k < d; k++ {
		traces[k] = presets[k%len(presets)].Clone()
		traces[k].Name = fmt.Sprintf("%s#%d", traces[k].Name, k)
	}
	// Unit mean rates: compute total load at rate 1 per stream, then scale.
	ones := make(mat.Vec, d)
	for k := range ones {
		ones[k] = 1
	}
	loads, err := lm.ActualLoads(ones)
	if err != nil {
		return nil, nil, err
	}
	loadPerUnit := loads.Sum()
	if loadPerUnit <= 0 {
		return nil, nil, fmt.Errorf("workload: graph has zero load")
	}
	// ActualLoads is nonlinear (superlinear) in the presence of joins but
	// monotone in a uniform rate scale, so bisect for the target
	// utilization.
	utilAt := func(s float64) (float64, error) {
		loads, err := lm.ActualLoads(ones.Scale(s))
		if err != nil {
			return 0, err
		}
		return loads.Sum() / capacityTotal, nil
	}
	lo, hi := 0.0, targetUtil*capacityTotal/loadPerUnit
	for iter := 0; iter < 60; iter++ {
		u, err := utilAt(hi)
		if err != nil {
			return nil, nil, err
		}
		if u >= targetUtil {
			break
		}
		hi *= 2
	}
	scale := hi
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		u, err := utilAt(mid)
		if err != nil {
			return nil, nil, err
		}
		if u < targetUtil {
			lo = mid
		} else {
			hi = mid
		}
		scale = mid
	}
	means := make(mat.Vec, d)
	for k := range traces {
		traces[k] = traces[k].ScaleToMean(scale)
		means[k] = scale
	}
	return traces, means, nil
}

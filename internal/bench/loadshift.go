package bench

import (
	"fmt"
	"math/rand"

	"rodsp/internal/core"
	"rodsp/internal/feasible"
	"rodsp/internal/mat"
	"rodsp/internal/placement"
	"rodsp/internal/query"
	"rodsp/internal/workload"
)

// LoadShiftConfig drives the [reconstructed] robustness experiment: every
// rate-dependent baseline optimizes for an observed load point R0; the
// workload then shifts to a differently-shaped point at the same total
// volume. The paper's argument (Section 1): "the effectiveness of such an
// approach can become arbitrarily poor and even infeasible when the
// observed load characteristics are different from what the system was
// originally optimized for."
type LoadShiftConfig struct {
	Nodes        int
	Streams      int
	OpsPerStream int
	ShiftTrials  int // number of shifted target points
	NoisePoints  int // perturbations sampled around each shifted point
	Util         float64
	Seed         int64
}

// Defaults fills unset fields.
func (c *LoadShiftConfig) Defaults() {
	if c.Nodes == 0 {
		c.Nodes = 8
	}
	if c.Streams == 0 {
		c.Streams = 5
	}
	if c.OpsPerStream == 0 {
		c.OpsPerStream = 20
	}
	if c.ShiftTrials == 0 {
		c.ShiftTrials = 20
	}
	if c.NoisePoints == 0 {
		c.NoisePoints = 50
	}
	if c.Util == 0 {
		c.Util = 0.75
	}
}

// Run reports, per algorithm, the fraction of shifted workload points that
// remain feasible (same total normalized volume, different stream mix).
func (c LoadShiftConfig) Run() (*Table, error) {
	c.Defaults()
	rng := newRand(c.Seed)
	g, err := workload.RandomTrees(workload.TreeConfig{
		Streams: c.Streams, OpsPerStream: c.OpsPerStream, Seed: c.Seed,
	})
	if err != nil {
		return nil, err
	}
	lm, err := query.BuildLoadModel(g)
	if err != nil {
		return nil, err
	}
	caps := homogeneous(c.Nodes)
	lo := lm.Coef
	lk := lo.ColSums()
	d := lo.Cols

	// Observed point R0: a random mix at the configured utilization.
	mix0 := randomMix(rng, d)
	r0 := feasible.Denormalize(mix0.Scale(c.Util), lk, caps.Sum())

	plans := map[string]*placement.Plan{}
	rodPlan, _, err := core.PlaceBest(lo, caps, core.Config{}, 3000)
	if err != nil {
		return nil, err
	}
	plans["ROD"] = rodPlan
	if plans["LLF"], err = placement.LLF(lo, caps, r0); err != nil {
		return nil, err
	}
	if plans["Connected"], err = placement.Connected(g, lo, caps, r0); err != nil {
		return nil, err
	}
	// A series fluctuating around R0 (what a dynamic observer would see).
	series := mat.NewMatrix(50, d)
	for t := 0; t < series.Rows; t++ {
		for k := 0; k < d; k++ {
			series.Set(t, k, r0[k]*(0.5+rng.Float64()))
		}
	}
	if plans["Correlation"], err = placement.CorrelationBased(lo, caps, series); err != nil {
		return nil, err
	}
	plans["Random"] = placement.Random(lo.Rows, c.Nodes, rng)

	t := &Table{
		Title: "Figure 17 [reconstructed] — feasibility after the load mix shifts away from the observed point",
		Note: fmt.Sprintf("plans tuned at a %.0f%%-utilization observed mix; %d shifted mixes × %d noise points each",
			c.Util*100, c.ShiftTrials, c.NoisePoints),
		Header: []string{"algorithm", "feasible@observed", "feasible frac after shift"},
	}
	systems := map[string]*feasible.System{}
	for name, p := range plans {
		systems[name] = &feasible.System{Ln: p.NodeCoef(lo), C: caps}
	}
	shiftFeasible := map[string]int{}
	total := 0
	for s := 0; s < c.ShiftTrials; s++ {
		mix := randomMix(rng, d)
		for q := 0; q < c.NoisePoints; q++ {
			// Jitter the mix and keep the same total normalized volume.
			jit := make(mat.Vec, d)
			for k := range jit {
				jit[k] = mix[k] * (0.7 + 0.6*rng.Float64())
			}
			jit = jit.Scale(c.Util / jit.Sum())
			r := feasible.Denormalize(jit, lk, caps.Sum())
			total++
			for name, sys := range systems {
				if sys.FeasibleAt(r) {
					shiftFeasible[name]++
				}
			}
		}
	}
	for _, name := range AlgoNames {
		sys, ok := systems[name]
		if !ok {
			continue
		}
		t.AddRow(name,
			fmt.Sprintf("%v", sys.FeasibleAt(r0)),
			f3(float64(shiftFeasible[name])/float64(total)),
		)
	}
	return t, nil
}

// randomMix draws a random point on the normalized simplex Σx = 1.
func randomMix(rng *rand.Rand, d int) mat.Vec {
	x := make(mat.Vec, d)
	var sum float64
	for k := range x {
		x[k] = rng.ExpFloat64()
		sum += x[k]
	}
	for k := range x {
		x[k] /= sum
	}
	return x
}

package bench

import (
	"strconv"
	"testing"
)

// BenchmarkTable2ExamplePlans is the CI smoke benchmark: one full Table 2
// reproduction (feasible-set geometry of the paper's example plans).
func BenchmarkTable2ExamplePlans(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimVsPrototype runs the cross-validation point once per
// iteration: both the DES and the TCP engine execute the same workload and
// report through the obs layer, whose series feed the utilization figures
// and whose schemas are checked for equality inside Run. The reported
// delta metric is the sim-vs-engine mean-utilization gap.
func BenchmarkSimVsPrototype(b *testing.B) {
	cfg := CrossValConfig{UtilLevels: []float64{0.5}, WallSeconds: 1.5, Seed: 41}
	for i := 0; i < b.N; i++ {
		tb, err := cfg.Run()
		if err != nil {
			b.Fatal(err)
		}
		if len(tb.Rows) == 0 {
			b.Fatal("no cross-validation rows")
		}
		delta, err := strconv.ParseFloat(tb.Rows[0][6], 64)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(delta, "Δutil")
	}
}

package bench

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"
)

func cell(t *Table, row, col int) float64 {
	v, err := strconv.ParseFloat(t.Rows[row][col], 64)
	if err != nil {
		panic(err)
	}
	return v
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "T", Note: "n", Header: []string{"a", "bbbb"}}
	tb.AddRow("1", "2")
	tb.AddRow("333", "4")
	s := tb.String()
	if !strings.Contains(s, "T\n") || !strings.Contains(s, "333") {
		t.Fatalf("rendering wrong:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, note, header, rule, 2 rows -> 6? title+note+header+rule+2 = 6
		if len(lines) != 6 {
			t.Fatalf("unexpected line count %d:\n%s", len(lines), s)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{Header: []string{"a", "b"}}
	tb.AddRow("1", `has "quotes", commas`)
	tb.AddRow("2", "plain")
	got := tb.CSV()
	want := "a,b\n1,\"has \"\"quotes\"\", commas\"\n2,plain\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestRunTablesUnknown(t *testing.T) {
	if _, err := RunTables("nope", true, 1); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestFormatHelpers(t *testing.T) {
	if f3(1.23456) != "1.235" || f4(0.5) != "0.5000" {
		t.Fatal("float formats wrong")
	}
	if fi(42) != "42" {
		t.Fatal("int format wrong")
	}
	if fms(0.0525) != "52.5ms" {
		t.Fatalf("fms = %q", fms(0.0525))
	}
	if fg(0.000123456) == "" {
		t.Fatal("fg empty")
	}
}

func TestFigure2Shape(t *testing.T) {
	tb := Figure2Config{Seed: 4}.Run()
	if len(tb.Rows) != 3 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	// All traces meaningfully bursty; HTTP (row 2) burstier than PKT (row 0).
	for i := 0; i < 3; i++ {
		if cell(tb, i, 1) < 0.15 {
			t.Fatalf("trace %s std too low: %v", tb.Rows[i][0], tb.Rows[i])
		}
	}
	if !(cell(tb, 2, 1) > cell(tb, 0, 1)) {
		t.Fatal("HTTP should be burstier than PKT")
	}
	// Variability persists across time scales (self-similarity): the
	// coarsest aggregation keeps at least a quarter of the 1s-scale std.
	for i := 0; i < 3; i++ {
		if cell(tb, i, 3) < cell(tb, i, 1)/6 {
			t.Fatalf("trace %s loses burstiness too fast: %v", tb.Rows[i][0], tb.Rows[i])
		}
	}
}

func TestTable2KnownGeometry(t *testing.T) {
	tb, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	// Plan (a) = {o1,o2 | o3,o4}: N1=[10 0], N2=[0 11]. Cuts at x=1/2 on
	// both axes in normalized space → exact ratio 0.5.
	if tb.Rows[0][1] != "[10 0]" || tb.Rows[0][2] != "[0 11]" {
		t.Fatalf("plan (a) coefficients: %v", tb.Rows[0])
	}
	if math.Abs(cell(tb, 0, 3)-0.5) > 1e-9 {
		t.Fatalf("plan (a) ratio = %v, want 0.5", tb.Rows[0][3])
	}
	// Plans (b) and (c) mix streams on both nodes; (b) = {o1,o4|o2,o3}
	// has N1=[4 2], N2=[6 9].
	if tb.Rows[1][1] != "[4 2]" || tb.Rows[1][2] != "[6 9]" {
		t.Fatalf("plan (b) coefficients: %v", tb.Rows[1])
	}
	// All ratios in (0,1]; min plane distance never exceeds r*.
	for i := 0; i < 3; i++ {
		r := cell(tb, i, 3)
		if r <= 0 || r > 1 {
			t.Fatalf("ratio %g out of range", r)
		}
		if cell(tb, i, 5) > cell(tb, i, 6)+1e-9 {
			t.Fatalf("plane distance exceeds ideal: %v", tb.Rows[i])
		}
	}
}

func TestFigure9Shape(t *testing.T) {
	tb, err := Figure9Config{Matrices: 200, Samples: 1200, Seed: 2}.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The mean measured ratio must increase with r/r* (the figure's trend)
	// and the bound column must never exceed the bin's min by much.
	var lastMean float64 = -1
	increases, comparisons := 0, 0
	for _, row := range tb.Rows {
		if row[2] == "-" {
			continue
		}
		mean, _ := strconv.ParseFloat(row[3], 64)
		if lastMean >= 0 {
			comparisons++
			if mean >= lastMean {
				increases++
			}
		}
		lastMean = mean
		min, _ := strconv.ParseFloat(row[2], 64)
		bound, _ := strconv.ParseFloat(row[5], 64)
		if bound > min+0.05 {
			t.Fatalf("hypersphere bound %g above measured min %g in row %v", bound, min, row)
		}
	}
	if comparisons == 0 || increases*3 < comparisons*2 {
		t.Fatalf("ratio not increasing with r/r*: %d/%d", increases, comparisons)
	}
}

func TestFigure14Shape(t *testing.T) {
	cfg := Figure14Config{
		Nodes: 6, Streams: 3, OpsList: []int{24, 90}, Trials: 3, Samples: 1200, Seed: 5,
	}
	tables, err := cfg.Run()
	if err != nil {
		t.Fatal(err)
	}
	toIdeal, toROD := tables[0], tables[1]
	// ROD (col 1) beats every baseline at every operator count.
	for _, row := range toIdeal.Rows {
		rod, _ := strconv.ParseFloat(row[1], 64)
		for col := 2; col <= 5; col++ {
			other, _ := strconv.ParseFloat(row[col], 64)
			if other > rod+1e-9 {
				t.Fatalf("baseline %s (%g) beats ROD (%g) in row %v",
					toIdeal.Header[col], other, rod, row)
			}
		}
	}
	// ROD approaches the ideal as operators grow.
	first, _ := strconv.ParseFloat(toIdeal.Rows[0][1], 64)
	last, _ := strconv.ParseFloat(toIdeal.Rows[len(toIdeal.Rows)-1][1], 64)
	if last < first {
		t.Fatalf("ROD ratio should improve with more operators: %g -> %g", first, last)
	}
	if last < 0.7 {
		t.Fatalf("ROD at 90 ops only reaches %g of ideal", last)
	}
	// Ratio-to-ROD rows are all ≤ 1.
	for _, row := range toROD.Rows {
		for col := 1; col < len(row); col++ {
			v, _ := strconv.ParseFloat(row[col], 64)
			if v > 1+1e-9 {
				t.Fatalf("ratio-to-ROD above 1: %v", row)
			}
		}
	}
}

func TestFigure15Shape(t *testing.T) {
	cfg := Figure15Config{
		Nodes: 6, StreamsList: []int{2, 5}, OpsPerStream: 15, Trials: 2, Samples: 1200, Seed: 3,
	}
	tb, err := cfg.Run()
	if err != nil {
		t.Fatal(err)
	}
	// ROD's relative advantage grows with dimensionality: every baseline's
	// ratio-to-ROD at d=5 is at most its ratio at d=2 (allowing small noise).
	for col := 1; col < len(tb.Header); col++ {
		at2 := cell(tb, 0, col)
		at5 := cell(tb, 1, col)
		if at5 > at2+0.1 {
			t.Fatalf("%s ratio grew with dimensions: %g -> %g", tb.Header[col], at2, at5)
		}
		if at2 > 1+1e-9 || at5 > 1+1e-9 {
			t.Fatalf("%s beats ROD", tb.Header[col])
		}
	}
}

func TestOptimalCmpShape(t *testing.T) {
	cfg := OptimalCmpConfig{Trials: 3, StreamsList: []int{2}, MaxOps: 8, Samples: 1200, Seed: 7}
	tb, err := cfg.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 2 {
		t.Fatalf("rows: %v", tb.Rows)
	}
	avg := cell(tb, 0, 2)
	min := cell(tb, 0, 3)
	if avg < 0.85 {
		t.Fatalf("avg ROD/OPT = %g, want >= 0.85 (paper: 0.95)", avg)
	}
	if min < 0.7 {
		t.Fatalf("min ROD/OPT = %g, want >= 0.7 (paper: 0.82)", min)
	}
}

func TestLatencyShape(t *testing.T) {
	cfg := LatencyConfig{Streams: 3, Nodes: 3, UtilLevels: []float64{0.45, 0.85}, Duration: 80, Seed: 11}
	tb, err := cfg.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Collect p99 per algorithm per util level.
	p99 := map[string]map[string]float64{}
	over := map[string]map[string]string{}
	for _, row := range tb.Rows {
		util, algo := row[0], row[1]
		if p99[util] == nil {
			p99[util] = map[string]float64{}
			over[util] = map[string]string{}
		}
		v, _ := strconv.ParseFloat(strings.TrimSuffix(row[4], "ms"), 64)
		p99[util][algo] = v
		over[util][algo] = row[7]
	}
	// At low load nothing is overloaded and ROD's latency is small.
	if over["0.450"]["ROD"] != "false" {
		t.Fatalf("ROD overloaded at 45%% load: %v", tb.Rows)
	}
	if p99["0.450"]["ROD"] > 500 {
		t.Fatalf("ROD p99 at low load = %vms", p99["0.450"]["ROD"])
	}
	// At high mean load with bursty traces, ROD must not be doing worse
	// than the worst baseline.
	worst := 0.0
	for _, a := range []string{"LLF", "Connected", "Random", "Correlation"} {
		if p99["0.850"][a] > worst {
			worst = p99["0.850"][a]
		}
	}
	if p99["0.850"]["ROD"] > worst+1 {
		t.Fatalf("ROD p99 (%v) worse than every baseline (%v) at high load", p99["0.850"]["ROD"], worst)
	}
}

func TestLoadShiftShape(t *testing.T) {
	cfg := LoadShiftConfig{ShiftTrials: 10, NoisePoints: 30, Seed: 13}
	tb, err := cfg.Run()
	if err != nil {
		t.Fatal(err)
	}
	frac := map[string]float64{}
	for _, row := range tb.Rows {
		v, _ := strconv.ParseFloat(row[2], 64)
		frac[row[0]] = v
	}
	// ROD survives shifted mixes at least as well as every baseline.
	for _, a := range []string{"LLF", "Connected", "Random", "Correlation"} {
		if frac[a] > frac["ROD"]+0.02 {
			t.Fatalf("%s (%g) survives shifts better than ROD (%g)", a, frac[a], frac["ROD"])
		}
	}
	if frac["ROD"] < 0.5 {
		t.Fatalf("ROD shift survival only %g", frac["ROD"])
	}
}

func TestLowerBoundShape(t *testing.T) {
	cfg := LowerBoundConfig{Trials: 3, Samples: 1500, Seed: 17, FloorLevels: []float64{0, 0.5}}
	tb, err := cfg.Run()
	if err != nil {
		t.Fatal(err)
	}
	// With no floor the two variants coincide (identical algorithm).
	if math.Abs(cell(tb, 0, 1)-cell(tb, 0, 2)) > 0.05 {
		t.Fatalf("zero-floor rows should match: %v", tb.Rows[0])
	}
	// With a substantial asymmetric floor, LB-aware ROD must win clearly.
	if cell(tb, 1, 2) < cell(tb, 1, 1)+0.05 {
		t.Fatalf("LB-aware ROD did not improve with an asymmetric floor: %v", tb.Rows[1])
	}
}

func TestJoinsShape(t *testing.T) {
	cfg := JoinsConfig{PairsList: []int{1, 2}, Trials: 2, Samples: 1200, Seed: 19}
	tb, err := cfg.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range tb.Rows {
		pairs := i + 1
		if row[1] != fi(pairs*3) {
			t.Fatalf("d should be 3 per pair (2 inputs + cut): %v", row)
		}
		if row[2] != fi(pairs) {
			t.Fatalf("cuts should equal pairs: %v", row)
		}
		// ROD at least matches each baseline.
		rod := cell(tb, i, 3)
		for col := 4; col <= 7; col++ {
			if cell(tb, i, col) > rod+0.02 {
				t.Fatalf("baseline %s beats ROD on joins: %v", tb.Header[col], row)
			}
		}
		// Linearization error is numerically zero.
		linErr, _ := strconv.ParseFloat(row[8], 64)
		if linErr > 1e-6 {
			t.Fatalf("linearization error %g", linErr)
		}
	}
}

func TestClusteringShape(t *testing.T) {
	cfg := ClusteringConfig{Seed: 23, XferFactors: []float64{0, 4}}
	tb, err := cfg.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Rows come in (plain, clustered) pairs per factor.
	if len(tb.Rows) != 4 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	// With zero transfer cost the two plane distances match (clustering is
	// a no-op in effect).
	if math.Abs(cell(tb, 0, 4)-cell(tb, 1, 4)) > 1e-6 {
		t.Fatalf("zero-xfer rows should match: %v vs %v", tb.Rows[0], tb.Rows[1])
	}
	// With heavy transfer cost the clustered plan wins on plane distance
	// and pays less network cost.
	plainDist, clustDist := cell(tb, 2, 4), cell(tb, 3, 4)
	if clustDist < plainDist {
		t.Fatalf("clustering did not help: %g vs %g", clustDist, plainDist)
	}
	plainNet, clustNet := cell(tb, 2, 5), cell(tb, 3, 5)
	if clustNet > plainNet {
		t.Fatalf("clustered plan pays more network cost: %g vs %g", clustNet, plainNet)
	}
}

func TestDynamicShape(t *testing.T) {
	cfg := DynamicConfig{Streams: 4, Nodes: 4, Duration: 120, Seed: 1}
	tb, err := cfg.Run()
	if err != nil {
		t.Fatal(err)
	}
	p99 := map[string]map[string]float64{}
	moves := map[string]map[string]int{}
	for _, row := range tb.Rows {
		sc, sys := row[0], row[1]
		if p99[sc] == nil {
			p99[sc] = map[string]float64{}
			moves[sc] = map[string]int{}
		}
		v, _ := strconv.ParseFloat(strings.TrimSuffix(row[3], "ms"), 64)
		p99[sc][sys] = v
		m, _ := strconv.Atoi(row[4])
		moves[sc][sys] = m
	}
	for _, sc := range []string{"short bursts", "slow drift"} {
		// Static ROD never moves and beats the dynamic systems.
		if moves[sc]["static ROD"] != 0 {
			t.Fatalf("%s: static ROD moved", sc)
		}
		if moves[sc]["stale+dynamic"] == 0 {
			t.Fatalf("%s: dynamic recovery made no moves", sc)
		}
		if p99[sc]["static ROD"] > p99[sc]["dynamic LLF"]+1 {
			t.Fatalf("%s: ROD p99 %v worse than dynamic LLF %v",
				sc, p99[sc]["static ROD"], p99[sc]["dynamic LLF"])
		}
		// Migration genuinely repairs a stale plan (when it is actually
		// broken — a healthy stale plan leaves nothing to repair).
		if p99[sc]["stale static"] > 2000 && p99[sc]["stale+dynamic"] >= p99[sc]["stale static"]/2 {
			t.Fatalf("%s: dynamic did not repair the stale plan (%v vs %v)",
				sc, p99[sc]["stale+dynamic"], p99[sc]["stale static"])
		}
		// ...but still does not beat the resilient static placement.
		if p99[sc]["static ROD"] > p99[sc]["stale+dynamic"]+1 {
			t.Fatalf("%s: ROD (%v) lost to the repaired stale plan (%v)",
				sc, p99[sc]["static ROD"], p99[sc]["stale+dynamic"])
		}
	}
}

func TestEmpiricalShape(t *testing.T) {
	cfg := EmpiricalConfig{Points: 40, SimSeconds: 25, Seed: 43}
	tb, err := cfg.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		delta := cell(tb, 0, 3)
		_ = row
		if delta > 0.12 {
			t.Fatalf("empirical and analytic ratios disagree: %v", tb.Rows)
		}
	}
	// ROD's empirical ratio must beat LLF's, measured by running the system.
	if cell(tb, 0, 2) < cell(tb, 1, 2) {
		t.Fatalf("ROD empirical (%v) below LLF (%v)", tb.Rows[0], tb.Rows[1])
	}
}

func TestCrossValShape(t *testing.T) {
	if testing.Short() {
		t.Skip("drives the wall-clock engine")
	}
	cfg := CrossValConfig{UtilLevels: []float64{0.5}, WallSeconds: 2.5, Seed: 41}
	tb, err := cfg.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		delta, _ := strconv.ParseFloat(row[6], 64)
		if delta > 0.12 {
			t.Fatalf("simulator and engine disagree by %g: %v", delta, row)
		}
	}
}

func TestOrderingShape(t *testing.T) {
	cfg := OrderingConfig{OpsList: []int{24, 120}, Samples: 1500, Seed: 31}
	tb, err := cfg.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		desc, _ := strconv.ParseFloat(row[1], 64)
		asc, _ := strconv.ParseFloat(row[2], 64)
		random, _ := strconv.ParseFloat(row[3], 64)
		het, _ := strconv.ParseFloat(row[4], 64)
		// The paper's descending order dominates both alternatives.
		if desc < asc-0.02 || desc < random-0.02 {
			t.Fatalf("descending order lost: %v", row)
		}
		// Heterogeneous capacities stay in the same ballpark (Theorem 1's
		// capacity-proportional balancing works).
		if het < desc*0.5 {
			t.Fatalf("heterogeneous collapse: %v", row)
		}
	}
	// At high operator counts the gap is decisive.
	last := tb.Rows[len(tb.Rows)-1]
	desc, _ := strconv.ParseFloat(last[1], 64)
	asc, _ := strconv.ParseFloat(last[2], 64)
	if desc < asc+0.1 {
		t.Fatalf("expected a decisive descending-order win at high ops: %v", last)
	}
}

func TestRunAndRunAllQuick(t *testing.T) {
	var buf bytes.Buffer
	if err := Run(&buf, "table2", true, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table 2") {
		t.Fatal("table2 output missing")
	}
	if err := Run(&buf, "nope", true, 1); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

// TestFullSuiteQuick runs every experiment at quick scale — the end-to-end
// reproduction smoke test (skipped under -short).
func TestFullSuiteQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite is slow")
	}
	var buf bytes.Buffer
	if err := RunAll(&buf, true, 3); err != nil {
		t.Fatal(err)
	}
	for _, name := range ExperimentNames {
		if !strings.Contains(buf.String(), "==== "+name+" ====") {
			t.Fatalf("experiment %s missing from the suite output", name)
		}
	}
}

package bench

import (
	"fmt"

	"rodsp/internal/query"
	"rodsp/internal/workload"
)

// Figure15Config drives the dimensionality experiment: the ratio of each
// baseline's feasible-set size to ROD's as the number of input streams
// grows (Figure 15: ROD's relative advantage increases with every added
// dimension).
type Figure15Config struct {
	Nodes        int
	StreamsList  []int
	OpsPerStream int
	Trials       int
	Samples      int
	Seed         int64
}

// Defaults fills unset fields.
func (c *Figure15Config) Defaults() {
	if c.Nodes == 0 {
		c.Nodes = 10
	}
	if c.StreamsList == nil {
		c.StreamsList = []int{2, 3, 4, 5, 6, 7}
	}
	if c.OpsPerStream == 0 {
		c.OpsPerStream = 20
	}
	if c.Trials == 0 {
		c.Trials = 5
	}
	if c.Samples == 0 {
		c.Samples = 3000
	}
}

// Run produces the ratio-to-ROD series per input-stream count.
func (c Figure15Config) Run() (*Table, error) {
	c.Defaults()
	caps := homogeneous(c.Nodes)
	t := &Table{
		Title: "Figure 15 — feasible set size ratio (A / ROD) vs number of input streams",
		Note: fmt.Sprintf("n=%d nodes, %d operators per stream, %d trials per baseline",
			c.Nodes, c.OpsPerStream, c.Trials),
		Header: append([]string{"streams"}, AlgoNames[1:]...),
	}
	// Stream-count points derive independent seeds from c.Seed — fan them
	// across the trial-runner, append rows in sweep order.
	rows, err := RunTrials(len(c.StreamsList), func(pi int) ([]string, error) {
		d := c.StreamsList[pi]
		g, err := workload.RandomTrees(workload.TreeConfig{
			Streams: d, OpsPerStream: c.OpsPerStream, Seed: c.Seed + int64(d)*13,
		})
		if err != nil {
			return nil, err
		}
		lm, err := query.BuildLoadModel(g)
		if err != nil {
			return nil, err
		}
		ratios, err := averageRatios(g, lm, caps, c.Trials, c.Samples, c.Seed+int64(d)*29)
		if err != nil {
			return nil, err
		}
		row := []string{fi(d)}
		for _, a := range AlgoNames[1:] {
			row = append(row, f3(ratios[a]/ratios["ROD"]))
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t, nil
}

package bench

import (
	"fmt"
	"math"

	"rodsp/internal/mat"
	"rodsp/internal/query"
	"rodsp/internal/workload"
)

// JoinsConfig drives the Section 6.2 nonlinear-model experiment: join-
// bearing workloads are linearized by cutting at join outputs, ROD places
// the linearized model, and the baselines are compared in the same
// (linearized) variable space. The runner also reports the linearization
// consistency error against the true nonlinear loads.
type JoinsConfig struct {
	Nodes     int
	PairsList []int
	Trials    int
	Samples   int
	Seed      int64
}

// Defaults fills unset fields.
func (c *JoinsConfig) Defaults() {
	if c.Nodes == 0 {
		c.Nodes = 6
	}
	if c.PairsList == nil {
		c.PairsList = []int{1, 2, 3}
	}
	if c.Trials == 0 {
		c.Trials = 5
	}
	if c.Samples == 0 {
		c.Samples = 3000
	}
}

// Run reports per join-pair count: linearized dimensionality, the average
// feasible ratios, and the worst linearization error.
func (c JoinsConfig) Run() (*Table, error) {
	c.Defaults()
	caps := homogeneous(c.Nodes)
	t := &Table{
		Title: "Section 6.2 — nonlinear (join) workloads via linearization cuts",
		Note: fmt.Sprintf("n=%d nodes; feasible ratios measured in the linearized variable space; %d trials per row",
			c.Nodes, c.Trials),
		Header: []string{"join pairs", "vars (d)", "cuts", "ROD", "Correlation", "LLF", "Random", "Connected", "max lin err"},
	}
	for _, pairs := range c.PairsList {
		g, err := workload.JoinPipelines(workload.JoinConfig{Pairs: pairs, Seed: c.Seed + int64(pairs)})
		if err != nil {
			return nil, err
		}
		lm, err := query.BuildLoadModel(g)
		if err != nil {
			return nil, err
		}
		ratios, err := averageRatios(g, lm, caps, c.Trials, c.Samples, c.Seed+int64(pairs)*31)
		if err != nil {
			return nil, err
		}
		// Linearization consistency: the linear model evaluated at resolved
		// variables must match the true nonlinear loads.
		rng := newRand(c.Seed + int64(pairs)*7)
		maxErr := 0.0
		for probe := 0; probe < 25; probe++ {
			rates := make(mat.Vec, g.NumInputs())
			for k := range rates {
				rates[k] = rng.Float64() * 50
			}
			x, err := lm.ResolveVars(rates)
			if err != nil {
				return nil, err
			}
			linear := lm.Loads(x)
			actual, err := lm.ActualLoads(rates)
			if err != nil {
				return nil, err
			}
			for j := range linear {
				if e := math.Abs(linear[j] - actual[j]); e > maxErr {
					maxErr = e
				}
			}
		}
		t.AddRow(fi(pairs), fi(lm.D()), fi(lm.NumCuts()),
			f3(ratios["ROD"]), f3(ratios["Correlation"]), f3(ratios["LLF"]),
			f3(ratios["Random"]), f3(ratios["Connected"]),
			fg(maxErr),
		)
	}
	return t, nil
}

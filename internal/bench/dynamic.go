package bench

import (
	"fmt"
	"math"

	"rodsp/internal/core"
	"rodsp/internal/placement"
	"rodsp/internal/query"
	"rodsp/internal/sim"
	"rodsp/internal/trace"
	"rodsp/internal/workload"
)

// DynamicConfig drives the static-vs-dynamic experiment behind the paper's
// Section 1 argument: reactive operator migration handles slow load drift
// but cannot keep up with short-term bursts — every reaction pays a
// state-migration stall — while a resilient static placement absorbs both
// without moving anything.
type DynamicConfig struct {
	Streams       int
	Nodes         int
	Duration      float64 // simulated seconds per run
	Period        float64 // rebalance decision interval
	MigrationTime float64 // stall per moved operator (paper: ~hundreds of ms)
	Util          float64 // mean system utilization
	Seed          int64
}

// Defaults fills unset fields.
func (c *DynamicConfig) Defaults() {
	if c.Streams == 0 {
		c.Streams = 4
	}
	if c.Nodes == 0 {
		c.Nodes = 4
	}
	if c.Duration == 0 {
		c.Duration = 300
	}
	if c.Period == 0 {
		c.Period = 5
	}
	if c.MigrationTime == 0 {
		c.MigrationTime = 0.3
	}
	if c.Util == 0 {
		c.Util = 0.7
	}
}

// Run simulates two scenarios — short-term bursts and slow drift — under
// four systems: static ROD, static LLF, and dynamic LLF/Correlation
// rebalancers starting from the LLF plan.
func (c DynamicConfig) Run() (*Table, error) {
	c.Defaults()
	g, err := workload.TrafficMonitoring(workload.MonitoringConfig{Streams: c.Streams, Seed: c.Seed})
	if err != nil {
		return nil, err
	}
	lm, err := query.BuildLoadModel(g)
	if err != nil {
		return nil, err
	}
	caps := homogeneous(c.Nodes)

	// Mean rates for the target utilization; both scenarios share them.
	burstTraces, means, err := workload.ScaledTraces(lm, caps.Sum(), c.Util, c.Seed)
	if err != nil {
		return nil, err
	}
	driftTraces := driftScenario(means, c.Duration)

	rodPlan, _, err := core.PlaceBest(lm.Coef, caps, core.Config{}, 3000)
	if err != nil {
		return nil, err
	}
	avg, err := lm.ResolveVars(means)
	if err != nil {
		return nil, err
	}
	llfPlan, err := placement.LLF(lm.Coef, caps, avg)
	if err != nil {
		return nil, err
	}
	// A stale plan: Connected-balancing tuned for a long-gone mix where
	// stream 0 dominated — the "system optimized for yesterday's load" that
	// dynamic redistribution exists to repair.
	stale := avg.Clone()
	stale[0] *= 4
	for k := 1; k < len(stale); k++ {
		stale[k] *= 0.25
	}
	stalePlan, err := placement.Connected(g, lm.Coef, caps, stale)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title: "Static resilient placement vs dynamic operator migration (Section 1's motivation, measured)",
		Note: fmt.Sprintf("traffic monitoring, %d streams on %d nodes, %gs simulated; migration stalls both nodes %.0f ms per move; rebalance period %gs",
			c.Streams, c.Nodes, c.Duration, c.MigrationTime*1000, c.Period),
		Header: []string{"scenario", "system", "p50", "p99", "moves", "stall(s)", "max util"},
	}

	type system struct {
		name string
		plan *placement.Plan
		rb   *sim.RebalanceConfig
	}
	systems := []system{
		{"static ROD", rodPlan, nil},
		{"static LLF", llfPlan, nil},
		{"dynamic LLF", llfPlan, &sim.RebalanceConfig{
			Period: c.Period, MigrationTime: c.MigrationTime,
			Policy: &sim.LLFPolicy{Tolerance: 0.1},
		}},
		{"dynamic Corr", llfPlan, &sim.RebalanceConfig{
			Period: c.Period, MigrationTime: c.MigrationTime,
			Policy: &sim.CorrelationPolicy{Tolerance: 0.1},
		}},
		{"stale static", stalePlan, nil},
		{"stale+dynamic", stalePlan, &sim.RebalanceConfig{
			Period: c.Period, MigrationTime: c.MigrationTime,
			Policy: &sim.LLFPolicy{Tolerance: 0.1},
		}},
	}
	scenarios := []struct {
		name   string
		traces []*trace.Trace
	}{
		{"short bursts", burstTraces},
		{"slow drift", driftTraces},
	}
	for _, sc := range scenarios {
		sources := map[query.StreamID]*trace.Trace{}
		for i, in := range g.Inputs() {
			sources[in] = sc.traces[i%len(sc.traces)]
		}
		for _, sys := range systems {
			var rb *sim.RebalanceConfig
			if sys.rb != nil {
				// Fresh policy state per run.
				cp := *sys.rb
				switch sys.rb.Policy.(type) {
				case *sim.CorrelationPolicy:
					cp.Policy = &sim.CorrelationPolicy{Tolerance: 0.1}
				case *sim.LLFPolicy:
					cp.Policy = &sim.LLFPolicy{Tolerance: 0.1}
				}
				rb = &cp
			}
			res, err := sim.Run(sim.Config{
				Graph:      g,
				NodeOf:     sys.plan.NodeOf,
				Capacities: caps,
				Sources:    sources,
				Duration:   c.Duration,
				WarmUp:     c.Duration * 0.1,
				Arrivals:   sim.PoissonArrivals,
				Seed:       c.Seed + 1,
				MaxEvents:  50_000_000,
				Rebalance:  rb,
			})
			if err != nil {
				return nil, fmt.Errorf("bench: dynamic %s/%s: %w", sc.name, sys.name, err)
			}
			t.AddRow(sc.name, sys.name,
				fms(res.LatencyP50), fms(res.LatencyP99),
				fi(res.Rebalance.Moves), f3(res.Rebalance.StallSeconds),
				f3(res.MaxUtilization()))
		}
	}
	return t, nil
}

// driftScenario builds slowly phase-shifted sinusoidal traces: the total
// volume is steady but the per-stream mix rotates over the run — the
// medium-term variation dynamic redistribution is good at.
func driftScenario(means []float64, duration float64) []*trace.Trace {
	out := make([]*trace.Trace, len(means))
	bins := int(duration) + 1
	for k := range means {
		rates := make([]float64, bins)
		phase := 2 * math.Pi * float64(k) / float64(len(means))
		for i := range rates {
			t := float64(i) / duration * 2 * math.Pi // one slow cycle per run
			rates[i] = means[k] * (1 + 0.75*math.Sin(t+phase))
		}
		out[k] = trace.New(fmt.Sprintf("drift%d", k), 1, rates)
	}
	return out
}

package bench

import (
	"math/rand"

	"rodsp/internal/mat"
	"rodsp/internal/query"
)

// newRand returns a seeded PRNG.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// meanVarRates resolves mean input rates into the full variable vector
// (identity for linear graphs; evaluates cut variables otherwise).
func meanVarRates(lm *query.LoadModel, inputMeans mat.Vec) (mat.Vec, error) {
	return lm.ResolveVars(inputMeans)
}

// resolveSeries maps a T×d_inputs rate series to the T×D variable series by
// resolving the nonlinear cut variables row by row.
func resolveSeries(lm *query.LoadModel, series *mat.Matrix) (*mat.Matrix, error) {
	out := mat.NewMatrix(series.Rows, lm.D())
	for t := 0; t < series.Rows; t++ {
		x, err := lm.ResolveVars(series.Row(t))
		if err != nil {
			return nil, err
		}
		copy(out.Row(t), x)
	}
	return out, nil
}

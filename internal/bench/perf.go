package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"
)

// ExperimentTiming records one experiment's wall-clock duration.
type ExperimentTiming struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

// PerfRecord is the machine-readable benchmark record rodbench writes
// (conventionally BENCH_placement.json): wall-clock per experiment at a
// given worker count, plus enough environment to interpret it — the
// compute plane's perf trajectory accumulates one of these per run.
type PerfRecord struct {
	Bench        string             `json:"bench"`
	Workers      int                `json:"workers"`
	GOMAXPROCS   int                `json:"gomaxprocs"`
	GoVersion    string             `json:"go_version"`
	Seed         int64              `json:"seed"`
	Quick        bool               `json:"quick"`
	Experiments  []ExperimentTiming `json:"experiments"`
	TotalSeconds float64            `json:"total_seconds"`
}

// NewPerfRecord starts a record for the current process configuration.
func NewPerfRecord(workers int, seed int64, quick bool) *PerfRecord {
	return &PerfRecord{
		Bench:      "placement",
		Workers:    workers,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Seed:       seed,
		Quick:      quick,
	}
}

// Add appends one experiment's timing and folds it into the total.
func (p *PerfRecord) Add(name string, d time.Duration) {
	secs := d.Seconds()
	p.Experiments = append(p.Experiments, ExperimentTiming{Name: name, Seconds: secs})
	p.TotalSeconds += secs
}

// Write marshals the record (indented, trailing newline) to path.
func (p *PerfRecord) Write(path string) error {
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: marshal perf record: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

package bench

import (
	"fmt"

	"rodsp/internal/core"
	"rodsp/internal/mat"
	"rodsp/internal/placement"
	"rodsp/internal/query"
	"rodsp/internal/workload"
)

// OrderingConfig drives the phase-1 ablation: the paper sorts operators by
// descending coefficient norm "since dealing with such operators late may
// cause the system to significantly deviate from the optimal results"
// (Section 5.1). This experiment quantifies that justification, and also
// checks ROD on heterogeneous node capacities (Theorem 1 balances load in
// proportion to capacity).
type OrderingConfig struct {
	Nodes   int
	Streams int
	OpsList []int
	Samples int
	Seed    int64
}

// Defaults fills unset fields.
func (c *OrderingConfig) Defaults() {
	if c.Nodes == 0 {
		c.Nodes = 8
	}
	if c.Streams == 0 {
		c.Streams = 4
	}
	if c.OpsList == nil {
		c.OpsList = []int{24, 80, 160}
	}
	if c.Samples == 0 {
		c.Samples = 3000
	}
}

// Run reports, per operator count, the feasible ratio under the three
// phase-1 orders (homogeneous nodes), and under descending order on a
// heterogeneous cluster of the same total capacity.
func (c OrderingConfig) Run() (*Table, error) {
	c.Defaults()
	homo := homogeneous(c.Nodes)
	// Heterogeneous cluster with the same total capacity: half the nodes
	// twice as fast as the other half.
	hetero := make(mat.Vec, c.Nodes)
	for i := range hetero {
		if i < c.Nodes/2 {
			hetero[i] = 4.0 / 3
		} else {
			hetero[i] = 2.0 / 3
		}
	}
	t := &Table{
		Title: "Ablation — phase-1 operator ordering, plus heterogeneous capacities",
		Note: fmt.Sprintf("n=%d nodes, d=%d streams; hetero = same total capacity split 2:1 across node halves",
			c.Nodes, c.Streams),
		Header: []string{"ops", "norm-desc", "norm-asc", "random order", "hetero (desc)"},
	}
	// Operator-count points derive independent seeds — fan them across the
	// trial-runner, append rows in sweep order.
	rows, err := RunTrials(len(c.OpsList), func(pi int) ([]string, error) {
		ops := c.OpsList[pi]
		per := ops / c.Streams
		if per == 0 {
			per = 1
		}
		g, err := workload.RandomTrees(workload.TreeConfig{
			Streams: c.Streams, OpsPerStream: per, Seed: c.Seed + int64(ops),
		})
		if err != nil {
			return nil, err
		}
		lm, err := query.BuildLoadModel(g)
		if err != nil {
			return nil, err
		}
		eval := func(caps mat.Vec, ordering core.Ordering) (float64, error) {
			plan, _, err := core.Place(lm.Coef, caps, core.Config{
				Selector: core.SelectMaxPlaneDistance,
				Ordering: ordering,
				Seed:     c.Seed,
			})
			if err != nil {
				return 0, err
			}
			return placement.Evaluate(plan, lm.Coef, caps, c.Samples)
		}
		desc, err := eval(homo, core.OrderNormDescending)
		if err != nil {
			return nil, err
		}
		asc, err := eval(homo, core.OrderNormAscending)
		if err != nil {
			return nil, err
		}
		random, err := eval(homo, core.OrderRandom)
		if err != nil {
			return nil, err
		}
		het, err := eval(hetero, core.OrderNormDescending)
		if err != nil {
			return nil, err
		}
		return []string{fi(per * c.Streams), f3(desc), f3(asc), f3(random), f3(het)}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t, nil
}

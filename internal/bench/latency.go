package bench

import (
	"fmt"

	"rodsp/internal/core"
	"rodsp/internal/mat"
	"rodsp/internal/placement"
	"rodsp/internal/query"
	"rodsp/internal/sim"
	"rodsp/internal/trace"
	"rodsp/internal/workload"
)

// LatencyConfig drives the [reconstructed] prototype latency experiment:
// the traffic-monitoring workload placed by each algorithm, driven by the
// bursty trace stand-ins at rising mean utilization, with end-to-end
// latency measured in the discrete-event simulator. The paper's claim:
// plans with larger feasible sets keep latency low over a much wider range
// of load points.
type LatencyConfig struct {
	Streams    int
	Nodes      int
	UtilLevels []float64 // mean system utilizations to drive
	Duration   float64   // simulated seconds per run
	Seed       int64
}

// Defaults fills unset fields.
func (c *LatencyConfig) Defaults() {
	if c.Streams == 0 {
		c.Streams = 5
	}
	if c.Nodes == 0 {
		c.Nodes = 4
	}
	if c.UtilLevels == nil {
		c.UtilLevels = []float64{0.4, 0.6, 0.8}
	}
	if c.Duration == 0 {
		c.Duration = 300
	}
}

// Run simulates every algorithm × utilization level and reports p95/p99
// latency, the worst node utilization, and whether the run ended overloaded.
func (c LatencyConfig) Run() (*Table, error) {
	c.Defaults()
	g, err := workload.TrafficMonitoring(workload.MonitoringConfig{Streams: c.Streams, Seed: c.Seed})
	if err != nil {
		return nil, err
	}
	lm, err := query.BuildLoadModel(g)
	if err != nil {
		return nil, err
	}
	caps := homogeneous(c.Nodes)
	plans, err := plansForComparison(g, lm, caps, c.Seed)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title: "Figure 16 [reconstructed] — end-to-end latency under bursty traces vs mean load",
		Note: fmt.Sprintf("traffic monitoring, %d streams on %d nodes, %gs simulated per point, PKT/TCP/HTTP-style traces",
			c.Streams, c.Nodes, c.Duration),
		Header: []string{"mean util", "algorithm", "p50", "p95", "p99", "max node util", "backlog", "overloaded"},
	}
	for _, util := range c.UtilLevels {
		// Same trace shapes at every level — only the scale changes, so the
		// series is comparable across the sweep.
		traces, _, err := workload.ScaledTraces(lm, caps.Sum(), util, c.Seed)
		if err != nil {
			return nil, err
		}
		sources := map[query.StreamID]*trace.Trace{}
		for i, in := range g.Inputs() {
			sources[in] = traces[i]
		}
		for _, name := range AlgoNames {
			plan, ok := plans[name]
			if !ok {
				continue
			}
			res, err := sim.Run(sim.Config{
				Graph:      g,
				NodeOf:     plan.NodeOf,
				Capacities: caps,
				Sources:    sources,
				Duration:   c.Duration,
				WarmUp:     c.Duration * 0.1,
				Arrivals:   sim.PoissonArrivals,
				Seed:       c.Seed + 1,
				MaxEvents:  50_000_000,
			})
			if err != nil {
				return nil, fmt.Errorf("bench: simulating %s at util %g: %w", name, util, err)
			}
			backlog := 0
			for _, b := range res.Backlog {
				backlog += b
			}
			t.AddRow(f3(util), name,
				fms(res.LatencyP50), fms(res.LatencyP95), fms(res.LatencyP99),
				f3(res.MaxUtilization()), fi(backlog),
				fmt.Sprintf("%v", res.Overloaded(0.95, 500)),
			)
		}
	}
	return t, nil
}

// plansForComparison builds one plan per algorithm for a fixed workload,
// using the mean rates of a nominal 60%-utilization operating point for
// the rate-dependent baselines (they optimize for the observed load, as in
// the paper).
func plansForComparison(g *query.Graph, lm *query.LoadModel, caps []float64, seed int64) (map[string]*placement.Plan, error) {
	capsVec := mat.Vec(caps)
	_, means, err := workload.ScaledTraces(lm, capsVec.Sum(), 0.6, seed)
	if err != nil {
		return nil, err
	}
	plans := map[string]*placement.Plan{}
	rodPlan, _, err := core.PlaceBest(lm.Coef, capsVec, core.Config{}, 3000)
	if err != nil {
		return nil, err
	}
	plans["ROD"] = rodPlan

	avg, err := meanVarRates(lm, means)
	if err != nil {
		return nil, err
	}
	if p, err := placement.LLF(lm.Coef, capsVec, avg); err == nil {
		plans["LLF"] = p
	} else {
		return nil, err
	}
	if p, err := placement.Connected(g, lm.Coef, capsVec, avg); err == nil {
		plans["Connected"] = p
	} else {
		return nil, err
	}
	// Correlation sees the actual bursty series, resolved through any cuts.
	traces, _, err := workload.ScaledTraces(lm, capsVec.Sum(), 0.6, seed)
	if err != nil {
		return nil, err
	}
	series, err := workload.RateSeriesFromTraces(traces, 100)
	if err != nil {
		return nil, err
	}
	resolved, err := resolveSeries(lm, series)
	if err != nil {
		return nil, err
	}
	if p, err := placement.CorrelationBased(lm.Coef, capsVec, resolved); err == nil {
		plans["Correlation"] = p
	} else {
		return nil, err
	}
	plans["Random"] = placement.Random(lm.Coef.Rows, len(caps), newRand(seed))
	return plans, nil
}

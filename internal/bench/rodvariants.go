package bench

import (
	"fmt"

	"rodsp/internal/core"
	"rodsp/internal/placement"
	"rodsp/internal/query"
	"rodsp/internal/workload"
)

// RODVariantsConfig drives the ablation over ROD's design choices: the
// Class-I tie-break (random vs deterministic max plane distance) and the
// Class-II rule (the paper's max plane distance vs this repository's
// overshoot-penalized refinement), plus the two-run portfolio.
type RODVariantsConfig struct {
	Nodes   int
	Streams int
	OpsList []int
	Samples int
	Seeds   int // random-selector repetitions
	Seed    int64
}

// Defaults fills unset fields.
func (c *RODVariantsConfig) Defaults() {
	if c.Nodes == 0 {
		c.Nodes = 10
	}
	if c.Streams == 0 {
		c.Streams = 5
	}
	if c.OpsList == nil {
		c.OpsList = []int{20, 60, 120, 200}
	}
	if c.Samples == 0 {
		c.Samples = 3000
	}
	if c.Seeds == 0 {
		c.Seeds = 5
	}
}

// Run reports the feasible ratio of each variant per operator count.
func (c RODVariantsConfig) Run() (*Table, error) {
	c.Defaults()
	caps := homogeneous(c.Nodes)
	t := &Table{
		Title: "Ablation — ROD variants (Class-I tie-break × Class-II rule)",
		Note: fmt.Sprintf("n=%d, d=%d; 'random' is averaged over %d seeds; 'portfolio' = PlaceBest",
			c.Nodes, c.Streams, c.Seeds),
		Header: []string{"ops", "random", "paper (max-dist)", "axis-balance", "portfolio"},
	}
	// Operator-count points are seed-independent — fan them across the
	// trial-runner and append rows in sweep order. The random-selector
	// repetitions inside a point sum in seed order.
	rows, err := RunTrials(len(c.OpsList), func(pi int) ([]string, error) {
		ops := c.OpsList[pi]
		per := ops / c.Streams
		if per == 0 {
			per = 1
		}
		g, err := workload.RandomTrees(workload.TreeConfig{
			Streams: c.Streams, OpsPerStream: per, Seed: c.Seed + int64(ops),
		})
		if err != nil {
			return nil, err
		}
		lm, err := query.BuildLoadModel(g)
		if err != nil {
			return nil, err
		}
		eval := func(p *placement.Plan) (float64, error) {
			return placement.Evaluate(p, lm.Coef, caps, c.Samples)
		}
		var randSum float64
		for s := 0; s < c.Seeds; s++ {
			p, _, err := core.Place(lm.Coef, caps, core.Config{Selector: core.SelectRandom, Seed: int64(s)})
			if err != nil {
				return nil, err
			}
			r, err := eval(p)
			if err != nil {
				return nil, err
			}
			randSum += r
		}
		paperPlan, _, err := core.Place(lm.Coef, caps, core.Config{Selector: core.SelectMaxPlaneDistance})
		if err != nil {
			return nil, err
		}
		paper, err := eval(paperPlan)
		if err != nil {
			return nil, err
		}
		axisPlan, _, err := core.Place(lm.Coef, caps, core.Config{Selector: core.SelectAxisBalance})
		if err != nil {
			return nil, err
		}
		axis, err := eval(axisPlan)
		if err != nil {
			return nil, err
		}
		bestPlan, _, err := core.PlaceBest(lm.Coef, caps, core.Config{}, c.Samples)
		if err != nil {
			return nil, err
		}
		best, err := eval(bestPlan)
		if err != nil {
			return nil, err
		}
		return []string{fi(per * c.Streams), f3(randSum / float64(c.Seeds)), f3(paper), f3(axis), f3(best)}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t, nil
}

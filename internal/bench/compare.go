package bench

import (
	"fmt"
	"math/rand"

	"rodsp/internal/core"
	"rodsp/internal/mat"
	"rodsp/internal/placement"
	"rodsp/internal/query"
	"rodsp/internal/stats"
	"rodsp/internal/workload"
)

// AlgoNames lists the compared algorithms in presentation order (ROD first,
// then the Section 7.2 baselines).
var AlgoNames = []string{"ROD", "Correlation", "LLF", "Random", "Connected"}

// rateCeil is the per-stream ceiling used when drawing the random average
// rates the load-balancing baselines optimize for: the rate at which one
// stream alone would fill the whole cluster (the ideal simplex corner).
func rateCeil(lk mat.Vec, c mat.Vec, k int) float64 { return c.Sum() / lk[k] }

// ratioStats holds the mean and population standard deviation of an
// algorithm's feasible ratios across trials.
type ratioStats struct {
	Mean, Std float64
}

// averageRatiosStd is averageRatios with per-algorithm trial spread (ROD
// runs once, so its Std is 0).
//
// The trials share one RNG stream, so the run is split in two phases:
// every trial's random inputs are drawn serially first (in the exact order
// the old serial loop consumed the stream), then the expensive
// deterministic part — baseline placement and QMC evaluation — fans across
// the trial-runner with results collected in trial order. Output is
// byte-identical to the serial loop for any worker count.
func averageRatiosStd(g *query.Graph, lm *query.LoadModel, c mat.Vec, trials, samples int, seed int64) (map[string]ratioStats, error) {
	rng := rand.New(rand.NewSource(seed))
	lo := lm.Coef
	lk := lo.ColSums()
	d := lo.Cols

	rodPlan, _, err := core.PlaceBest(lo, c, core.Config{}, samples)
	if err != nil {
		return nil, fmt.Errorf("bench: ROD: %w", err)
	}
	rodRatio, err := placement.Evaluate(rodPlan, lo, c, samples)
	if err != nil {
		return nil, err
	}

	type trialInputs struct {
		rates    mat.Vec
		series   *mat.Matrix
		randPlan *placement.Plan
	}
	inputs := make([]trialInputs, trials)
	for trial := range inputs {
		rates := make(mat.Vec, d)
		for k := range rates {
			rates[k] = rng.Float64() * rateCeil(lk, c, k)
		}
		series := workload.RandomRateSeries(d, 50, 1, rng)
		for k := 0; k < d; k++ {
			ceil := rateCeil(lk, c, k)
			for t := 0; t < series.Rows; t++ {
				series.Set(t, k, series.At(t, k)*ceil)
			}
		}
		inputs[trial] = trialInputs{rates, series, placement.Random(lo.Rows, len(c), rng)}
	}

	type trialRatios struct{ llf, conn, corr, rnd float64 }
	results, err := RunTrials(trials, func(trial int) (trialRatios, error) {
		in := inputs[trial]
		llfPlan, err := placement.LLF(lo, c, in.rates)
		if err != nil {
			return trialRatios{}, fmt.Errorf("bench: LLF: %w", err)
		}
		connPlan, err := placement.Connected(g, lo, c, in.rates)
		if err != nil {
			return trialRatios{}, fmt.Errorf("bench: Connected: %w", err)
		}
		corrPlan, err := placement.CorrelationBased(lo, c, in.series)
		if err != nil {
			return trialRatios{}, fmt.Errorf("bench: Correlation: %w", err)
		}
		var out trialRatios
		for _, e := range []struct {
			dst  *float64
			plan *placement.Plan
		}{{&out.llf, llfPlan}, {&out.conn, connPlan}, {&out.corr, corrPlan}, {&out.rnd, in.randPlan}} {
			ratio, err := placement.Evaluate(e.plan, lo, c, samples)
			if err != nil {
				return trialRatios{}, err
			}
			*e.dst = ratio
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}

	samplesPer := map[string][]float64{}
	for _, r := range results {
		samplesPer["LLF"] = append(samplesPer["LLF"], r.llf)
		samplesPer["Connected"] = append(samplesPer["Connected"], r.conn)
		samplesPer["Correlation"] = append(samplesPer["Correlation"], r.corr)
		samplesPer["Random"] = append(samplesPer["Random"], r.rnd)
	}
	out := map[string]ratioStats{"ROD": {Mean: rodRatio}}
	for name, xs := range samplesPer {
		out[name] = ratioStats{Mean: stats.Mean(xs), Std: stats.Std(xs)}
	}
	return out, nil
}

// averageRatios places the graph with every algorithm and returns the mean
// feasible-set ratio (to ideal) per algorithm. ROD runs once (it does not
// depend on observed rates); each baseline runs `trials` times with fresh
// random rate draws/seeds, as in Section 7.3.1.
func averageRatios(g *query.Graph, lm *query.LoadModel, c mat.Vec, trials, samples int, seed int64) (map[string]float64, error) {
	full, err := averageRatiosStd(g, lm, c, trials, samples, seed)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(full))
	for name, s := range full {
		out[name] = s.Mean
	}
	return out, nil
}

// homogeneous returns n capacity-1 nodes.
func homogeneous(n int) mat.Vec {
	c := make(mat.Vec, n)
	for i := range c {
		c[i] = 1
	}
	return c
}

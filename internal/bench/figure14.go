package bench

import (
	"fmt"

	"rodsp/internal/query"
	"rodsp/internal/workload"
)

// Figure14Config drives the base resiliency experiment: average feasible-
// set size ratio (to ideal, and to ROD) against the number of operators,
// for ROD and the four baselines, on random operator trees with 5 input
// streams.
type Figure14Config struct {
	Nodes   int
	Streams int
	OpsList []int // total operator counts (split across streams)
	Trials  int   // baseline repetitions per point (paper: 10)
	Samples int   // QMC budget per evaluation
	Seed    int64
}

// Defaults fills unset fields with paper-scale parameters.
func (c *Figure14Config) Defaults() {
	if c.Nodes == 0 {
		c.Nodes = 10
	}
	if c.Streams == 0 {
		c.Streams = 5
	}
	if c.OpsList == nil {
		c.OpsList = []int{20, 40, 80, 120, 160, 200}
	}
	if c.Trials == 0 {
		c.Trials = 10
	}
	if c.Samples == 0 {
		c.Samples = 3000
	}
}

// Run produces two tables: ratio-to-ideal and ratio-to-ROD per operator
// count (Figure 14's two panels).
func (c Figure14Config) Run() ([]*Table, error) {
	c.Defaults()
	caps := homogeneous(c.Nodes)
	toIdeal := &Table{
		Title:  "Figure 14(a) — average feasible set size ratio (A / Ideal) vs number of operators",
		Note:   fmt.Sprintf("n=%d nodes, d=%d streams, %d trials per baseline", c.Nodes, c.Streams, c.Trials),
		Header: append([]string{"ops"}, AlgoNames...),
	}
	toROD := &Table{
		Title:  "Figure 14(b) — average feasible set size ratio (A / ROD) vs number of operators",
		Header: append([]string{"ops"}, AlgoNames[1:]...),
	}
	spread := &Table{
		Title:  "Figure 14(c) — per-trial standard deviation of the baselines' ratios",
		Note:   "ROD runs once per workload (rate-independent), so it has no trial spread",
		Header: append([]string{"ops"}, AlgoNames[1:]...),
	}
	// Every operator-count point derives its own seeds from c.Seed, so the
	// points are independent: fan them across the trial-runner and append
	// the returned rows in sweep order.
	type point struct{ row1, row2, row3 []string }
	points, err := RunTrials(len(c.OpsList), func(pi int) (point, error) {
		ops := c.OpsList[pi]
		per := ops / c.Streams
		if per == 0 {
			per = 1
		}
		g, err := workload.RandomTrees(workload.TreeConfig{
			Streams: c.Streams, OpsPerStream: per, Seed: c.Seed + int64(ops),
		})
		if err != nil {
			return point{}, err
		}
		lm, err := query.BuildLoadModel(g)
		if err != nil {
			return point{}, err
		}
		ratios, err := averageRatiosStd(g, lm, caps, c.Trials, c.Samples, c.Seed+int64(ops)*7)
		if err != nil {
			return point{}, err
		}
		row1 := []string{fi(per * c.Streams)}
		for _, a := range AlgoNames {
			row1 = append(row1, f3(ratios[a].Mean))
		}
		row2 := []string{fi(per * c.Streams)}
		row3 := []string{fi(per * c.Streams)}
		for _, a := range AlgoNames[1:] {
			row2 = append(row2, f3(ratios[a].Mean/ratios["ROD"].Mean))
			row3 = append(row3, f3(ratios[a].Std))
		}
		return point{row1, row2, row3}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, p := range points {
		toIdeal.AddRow(p.row1...)
		toROD.AddRow(p.row2...)
		spread.AddRow(p.row3...)
	}
	return []*Table{toIdeal, toROD, spread}, nil
}

package bench

import (
	"fmt"
	"math"

	"rodsp/internal/core"
	"rodsp/internal/feasible"
	"rodsp/internal/placement"
	"rodsp/internal/query"
	"rodsp/internal/sim"
	"rodsp/internal/trace"
	"rodsp/internal/workload"
)

// EmpiricalConfig reproduces the paper's Borealis measurement methodology
// (Section 7.1): "we compute the feasible set size by randomly generating
// workload points, all within the ideal feasible set ... the system is
// deemed feasible if none of the nodes experience 100% utilization. The
// ratio of the number of feasible points to the number of runs is the
// ratio of the achievable feasible set size to the ideal one." Here the
// system under measurement is the discrete-event simulator, and the
// empirical ratio is compared with the analytic (QMC/exact) one.
type EmpiricalConfig struct {
	Streams      int
	Nodes        int
	OpsPerStream int
	Points       int     // workload points sampled within the ideal set
	SimSeconds   float64 // simulated seconds per point
	Seed         int64
}

// Defaults fills unset fields.
func (c *EmpiricalConfig) Defaults() {
	if c.Streams == 0 {
		c.Streams = 3
	}
	if c.Nodes == 0 {
		c.Nodes = 4
	}
	if c.OpsPerStream == 0 {
		c.OpsPerStream = 12
	}
	if c.Points == 0 {
		c.Points = 80
	}
	if c.SimSeconds == 0 {
		c.SimSeconds = 40
	}
}

// Run measures ROD's and LLF's feasible-set ratio both ways and reports the
// agreement.
func (c EmpiricalConfig) Run() (*Table, error) {
	c.Defaults()
	g, err := workload.RandomTrees(workload.TreeConfig{
		Streams: c.Streams, OpsPerStream: c.OpsPerStream, Seed: c.Seed,
	})
	if err != nil {
		return nil, err
	}
	lm, err := query.BuildLoadModel(g)
	if err != nil {
		return nil, err
	}
	caps := homogeneous(c.Nodes)
	lk := lm.CoefSums()

	rodPlan, _, err := core.PlaceBest(lm.Coef, caps, core.Config{}, 4000)
	if err != nil {
		return nil, err
	}
	rng := newRand(c.Seed)
	avg := workload.RandomRates(lm.D(), 1, rng)
	for k := range avg {
		avg[k] *= caps.Sum() / lk[k]
	}
	llfPlan, err := placement.LLF(lm.Coef, caps, avg)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title: "Section 7.1 methodology — empirical (run-the-system) vs analytic feasible-set measurement",
		Note: fmt.Sprintf("%d workload points inside the ideal set, %gs simulated each; feasible = no saturated node with growing backlog",
			c.Points, c.SimSeconds),
		Header: []string{"plan", "analytic ratio", "empirical ratio", "|Δ|", "sampling σ"},
	}
	points := feasible.SamplePoints(lm.D(), c.Points)
	for _, pl := range []struct {
		name string
		plan *placement.Plan
	}{{"ROD", rodPlan}, {"LLF", llfPlan}} {
		analytic, err := placement.Evaluate(pl.plan, lm.Coef, caps, 20000)
		if err != nil {
			return nil, err
		}
		feasibleCount := 0
		for _, x := range points {
			rates := feasible.Denormalize(x, lk, caps.Sum())
			ok, err := c.runPoint(g, pl.plan, caps, rates)
			if err != nil {
				return nil, err
			}
			if ok {
				feasibleCount++
			}
		}
		empirical := float64(feasibleCount) / float64(len(points))
		delta := empirical - analytic
		if delta < 0 {
			delta = -delta
		}
		// Binomial sampling error of the empirical estimate.
		sigma := sigmaOf(analytic, len(points))
		t.AddRow(pl.name, f3(analytic), f3(empirical), f3(delta), f3(sigma))
	}
	return t, nil
}

// runPoint simulates the system at a constant rate point and classifies it
// feasible unless some node ends saturated with a growing backlog.
func (c EmpiricalConfig) runPoint(g *query.Graph, plan *placement.Plan, caps []float64, rates []float64) (bool, error) {
	sources := map[query.StreamID]*trace.Trace{}
	for i, in := range g.Inputs() {
		sources[in] = trace.New("const", c.SimSeconds, []float64{rates[i]})
	}
	res, err := sim.Run(sim.Config{
		Graph:      g,
		NodeOf:     plan.NodeOf,
		Capacities: caps,
		Sources:    sources,
		Duration:   c.SimSeconds,
		Seed:       c.Seed,
		MaxEvents:  20_000_000,
	})
	if err != nil {
		return false, err
	}
	return !res.Overloaded(0.99, 25), nil
}

func sigmaOf(p float64, n int) float64 {
	return math.Sqrt(p * (1 - p) / float64(n))
}

package bench

import (
	"fmt"

	"rodsp/internal/cluster"
	"rodsp/internal/core"
	"rodsp/internal/feasible"
	"rodsp/internal/query"
	"rodsp/internal/workload"
)

// ClusteringConfig drives the Section 6.3 experiment: workloads whose
// streams carry per-tuple network transfer costs. Plain ROD ignores the
// communication CPU cost it induces; the clustering sweep trades a little
// placement freedom for far less transfer load.
type ClusteringConfig struct {
	Nodes        int
	Streams      int
	OpsPerStream int
	XferFactors  []float64 // transfer cost as a multiple of mean op cost
	Thresholds   []float64
	Seed         int64
}

// Defaults fills unset fields.
func (c *ClusteringConfig) Defaults() {
	if c.Nodes == 0 {
		c.Nodes = 6
	}
	if c.Streams == 0 {
		c.Streams = 4
	}
	if c.OpsPerStream == 0 {
		c.OpsPerStream = 12
	}
	if c.XferFactors == nil {
		c.XferFactors = []float64{0, 0.5, 2, 8}
	}
	if c.Thresholds == nil {
		c.Thresholds = []float64{0.5, 1, 2, 4}
	}
}

// Run compares unclustered ROD against the clustering sweep at each
// transfer-cost level: plane distance in the common normalization (the
// resiliency proxy), cut arcs, and total network CPU cost at a nominal
// operating point.
func (c ClusteringConfig) Run() (*Table, error) {
	c.Defaults()
	caps := homogeneous(c.Nodes)
	t := &Table{
		Title: "Section 6.3 — operator clustering under communication CPU costs",
		Note: fmt.Sprintf("n=%d nodes; xfer factor scales each arc's per-tuple transfer cost relative to the mean operator cost",
			c.Nodes),
		Header: []string{"xfer factor", "plan", "clusters", "cut arcs", "plane dist", "net cost@60%", "strategy", "threshold"},
	}
	for _, factor := range c.XferFactors {
		g, err := workload.RandomTrees(workload.TreeConfig{
			Streams: c.Streams, OpsPerStream: c.OpsPerStream, Seed: c.Seed,
		})
		if err != nil {
			return nil, err
		}
		// Attach transfer costs scaled to the mean operator cost.
		var meanCost float64
		for _, op := range g.Ops() {
			meanCost += op.Cost
		}
		meanCost /= float64(g.NumOps())
		for _, s := range g.Streams() {
			if !s.Input() {
				s.XferCost = factor * meanCost
			}
		}
		lm, err := query.BuildLoadModel(g)
		if err != nil {
			return nil, err
		}
		lk := lm.CoefSums()

		// A nominal 60%-utilization even-mix operating point for reporting
		// absolute network cost.
		mix := make([]float64, lm.D())
		for k := range mix {
			mix[k] = 0.6 / float64(len(mix)) * caps.Sum() / lk[k]
		}

		plain, _, err := core.Place(lm.Coef, caps, core.Config{Selector: core.SelectMaxPlaneDistance})
		if err != nil {
			return nil, err
		}
		plainLn := cluster.NodeCoefWithTransfer(lm, plain.NodeOf, c.Nodes)
		plainW, err := feasible.Weights(plainLn, caps, lk)
		if err != nil {
			return nil, err
		}
		t.AddRow(fg(factor), "plain ROD", fi(g.NumOps()),
			fi(cluster.CutArcs(g, plain.NodeOf)),
			f4(feasible.MinPlaneDistance(plainW)),
			fg(cluster.NetworkCostAt(lm, plain.NodeOf, mix)),
			"-", "-")

		best, err := cluster.Sweep(lm, caps, core.Config{Selector: core.SelectMaxPlaneDistance}, c.Thresholds)
		if err != nil {
			return nil, err
		}
		t.AddRow(fg(factor), "clustered ROD", fi(best.NumCluster),
			fi(cluster.CutArcs(g, best.Plan.NodeOf)),
			f4(best.PlaneDist),
			fg(cluster.NetworkCostAt(lm, best.Plan.NodeOf, mix)),
			best.Strategy.String(), fg(best.Threshold))
	}
	return t, nil
}

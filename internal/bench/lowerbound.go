package bench

import (
	"fmt"

	"rodsp/internal/core"
	"rodsp/internal/mat"
	"rodsp/internal/placement"
	"rodsp/internal/query"
	"rodsp/internal/workload"
)

// LowerBoundConfig drives the Section 6.1 extension experiment: when the
// workload is known to stay at or above a floor B, ROD can optimize the
// restricted feasible set {R ≥ B} by measuring plane distances from the
// normalized floor instead of the origin.
type LowerBoundConfig struct {
	Nodes        int
	Streams      int
	OpsPerStream int
	FloorLevels  []float64 // floor as a fraction of each stream's ideal budget
	Trials       int
	Samples      int
	Seed         int64
}

// Defaults fills unset fields.
func (c *LowerBoundConfig) Defaults() {
	if c.Nodes == 0 {
		c.Nodes = 8
	}
	if c.Streams == 0 {
		c.Streams = 4
	}
	if c.OpsPerStream == 0 {
		c.OpsPerStream = 15
	}
	if c.FloorLevels == nil {
		c.FloorLevels = []float64{0, 0.3, 0.5, 0.7}
	}
	if c.Trials == 0 {
		c.Trials = 5
	}
	if c.Samples == 0 {
		c.Samples = 4000
	}
}

// Run compares base ROD and floor-aware ROD on the restricted feasible
// ratio at each floor level (averaged over workload seeds).
func (c LowerBoundConfig) Run() (*Table, error) {
	c.Defaults()
	caps := homogeneous(c.Nodes)
	t := &Table{
		Title: "Section 6.1 — lower-bound-aware ROD on restricted workload sets {R >= B}",
		Note: fmt.Sprintf("asymmetric floor: stream 0 guaranteed at level f of the whole-cluster budget (a uniform floor adds no information — the restricted optimum is the balanced plan by symmetry); %d workloads per row; ratios are of the restricted ideal region",
			c.Trials),
		Header: []string{"floor(stream0)", "base ROD", "LB-aware ROD", "improvement"},
	}
	for _, f := range c.FloorLevels {
		// Each trial derives its own workload seed, so the trials fan
		// across the trial-runner; sums are reduced in trial order to keep
		// the float result identical to the serial loop.
		type pair struct{ base, aware float64 }
		results, err := RunSeededTrials(c.Trials, c.Seed, StrideSeed(101),
			func(trial int, seed int64) (pair, error) {
				g, err := workload.RandomTrees(workload.TreeConfig{
					Streams: c.Streams, OpsPerStream: c.OpsPerStream,
					Seed: seed,
				})
				if err != nil {
					return pair{}, err
				}
				lm, err := query.BuildLoadModel(g)
				if err != nil {
					return pair{}, err
				}
				lk := lm.CoefSums()
				lb := make(mat.Vec, lm.D())
				lb[0] = f * caps.Sum() / lk[0]
				basePlan, _, err := core.PlaceBest(lm.Coef, caps, core.Config{}, c.Samples)
				if err != nil {
					return pair{}, err
				}
				awarePlan, _, err := core.PlaceBest(lm.Coef, caps, core.Config{LowerBound: lb}, c.Samples)
				if err != nil {
					return pair{}, err
				}
				base, err := placement.EvaluateFrom(basePlan, lm.Coef, caps, lb, c.Samples)
				if err != nil {
					return pair{}, err
				}
				aware, err := placement.EvaluateFrom(awarePlan, lm.Coef, caps, lb, c.Samples)
				if err != nil {
					return pair{}, err
				}
				return pair{base, aware}, nil
			})
		if err != nil {
			return nil, err
		}
		var baseSum, awareSum float64
		for _, r := range results {
			baseSum += r.base
			awareSum += r.aware
		}
		base := baseSum / float64(c.Trials)
		aware := awareSum / float64(c.Trials)
		imp := "-"
		if base > 0 {
			imp = f3(aware / base)
		}
		t.AddRow(f3(f), f3(base), f3(aware), imp)
	}
	return t, nil
}

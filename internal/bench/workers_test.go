package bench

import (
	"testing"

	"rodsp/internal/par"
)

// Rendered experiment tables must be byte-identical for any worker count:
// the trial-runner draws all randomness serially and only fans out the
// deterministic evaluations, so parallelism can never change a published
// number. Exercised on the Figure 14 suite (trial-runner + averageRatiosStd
// + restricted and unrestricted evaluators) and the lower-bound suite
// (seeded trial fan-out).
func TestTablesBitIdenticalAcrossWorkers(t *testing.T) {
	defer par.SetWorkers(0)

	render := func() string {
		f14, err := Figure14Config{
			Nodes: 4, Streams: 2, OpsList: []int{6, 10}, Trials: 3, Samples: 400, Seed: 5,
		}.Run()
		if err != nil {
			t.Fatal(err)
		}
		lb, err := LowerBoundConfig{
			Nodes: 3, Streams: 2, OpsPerStream: 4, Trials: 4, Samples: 400, Seed: 5,
		}.Run()
		if err != nil {
			t.Fatal(err)
		}
		var s string
		for _, tb := range append(f14, lb) {
			s += tb.String() + "\n"
		}
		return s
	}

	par.SetWorkers(1)
	want := render()
	for _, w := range []int{2, 8} {
		par.SetWorkers(w)
		if got := render(); got != want {
			t.Fatalf("workers=%d renders different tables than workers=1", w)
		}
	}
}

package bench

import (
	"runtime"
	"testing"

	"rodsp/internal/par"
)

// TestFigure2ByteIdenticalAcrossRuns: the rendered Figure 2 table for a
// fixed seed must come out byte-identical run after run and regardless of
// GOMAXPROCS or the par worker pool setting. The benchmark tables are the
// repo's published numbers; any nondeterminism here would make the
// experiment scripts unverifiable.
func TestFigure2ByteIdenticalAcrossRuns(t *testing.T) {
	render := func() string {
		return Figure2Config{Seed: 1}.Run().String()
	}
	first := render()
	if first == "" {
		t.Fatal("empty figure2 table")
	}
	for i := 0; i < 2; i++ {
		if got := render(); got != first {
			t.Fatalf("figure2 table drifted on repeat %d:\n%s\nvs\n%s", i, first, got)
		}
	}

	// Parallelism must not leak into the output.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	prevWorkers := par.Workers()
	defer par.SetWorkers(prevWorkers)

	runtime.GOMAXPROCS(1)
	par.SetWorkers(1)
	serial := render()
	runtime.GOMAXPROCS(runtime.NumCPU())
	par.SetWorkers(8)
	wide := render()
	if serial != first || wide != first {
		t.Fatal("figure2 table depends on GOMAXPROCS / worker pool size")
	}

	// And a different seed must actually change the synthetic traces —
	// otherwise the byte-identity above would be vacuous.
	if other := (Figure2Config{Seed: 2}).Run().String(); other == first {
		t.Fatal("figure2 ignores its seed")
	}
}

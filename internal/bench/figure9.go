package bench

import (
	"math"
	"math/rand"

	"rodsp/internal/feasible"
	"rodsp/internal/mat"
)

// Figure9Config drives the plane-distance experiment: random node load
// coefficient matrices, scatter of feasible-set-ratio against r/r*
// (Figure 9 used 1000 matrices with 10 nodes and 3 input streams).
type Figure9Config struct {
	Nodes    int
	Streams  int
	Matrices int
	Samples  int
	Bins     int
	Seed     int64
}

// Defaults fills unset fields with the paper's parameters.
func (c *Figure9Config) Defaults() {
	if c.Nodes == 0 {
		c.Nodes = 10
	}
	if c.Streams == 0 {
		c.Streams = 3
	}
	if c.Matrices == 0 {
		c.Matrices = 1000
	}
	if c.Samples == 0 {
		c.Samples = 3000
	}
	if c.Bins == 0 {
		c.Bins = 10
	}
}

// Run generates the scatter and reports, per r/r* bin, the min/mean/max
// measured feasible-set ratio alongside the hypersphere lower-bound curve
// drawn in the figure.
func (c Figure9Config) Run() (*Table, error) {
	c.Defaults()
	rng := rand.New(rand.NewSource(c.Seed))
	type binAcc struct {
		min, max, sum float64
		n             int
	}
	bins := make([]binAcc, c.Bins)
	for i := range bins {
		bins[i].min = math.Inf(1)
	}
	rStar := feasible.IdealPlaneDistance(c.Streams)
	// The matrices come off one shared RNG stream, so they are drawn
	// serially; the QMC evaluations — the bulk of the work — fan across
	// the trial-runner and the bins accumulate in matrix order.
	ws := make([]*mat.Matrix, c.Matrices)
	for m := range ws {
		ws[m] = randomWeights(rng, c.Nodes, c.Streams)
	}
	type sample struct{ r, ratio float64 }
	evals, err := RunTrials(c.Matrices, func(m int) (sample, error) {
		ratio, err := feasible.RatioToIdeal(ws[m], c.Samples)
		if err != nil {
			return sample{}, err
		}
		return sample{r: feasible.MinPlaneDistance(ws[m]), ratio: ratio}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, e := range evals {
		frac := e.r / rStar
		b := int(frac * float64(c.Bins))
		if b >= c.Bins {
			b = c.Bins - 1
		}
		acc := &bins[b]
		acc.n++
		acc.sum += e.ratio
		if e.ratio < acc.min {
			acc.min = e.ratio
		}
		if e.ratio > acc.max {
			acc.max = e.ratio
		}
	}
	t := &Table{
		Title: "Figure 9 — feasible-set-size ratio vs r/r* (random L^n matrices)",
		Note: "n=" + fi(c.Nodes) + ", d=" + fi(c.Streams) + ", " + fi(c.Matrices) +
			" matrices; 'bound' is the hypersphere lower-bound curve",
		Header: []string{"r/r* bin", "count", "min", "mean", "max", "bound"},
	}
	for i := range bins {
		lo := float64(i) / float64(c.Bins)
		hi := float64(i+1) / float64(c.Bins)
		label := f3(lo) + "-" + f3(hi)
		if bins[i].n == 0 {
			t.AddRow(label, "0", "-", "-", "-", f3(feasible.HypersphereLowerBound(lo*rStar, c.Streams)))
			continue
		}
		t.AddRow(label, fi(bins[i].n),
			f3(bins[i].min),
			f3(bins[i].sum/float64(bins[i].n)),
			f3(bins[i].max),
			f3(feasible.HypersphereLowerBound(lo*rStar, c.Streams)),
		)
	}
	return t, nil
}

// randomWeights draws a random normalized weight matrix: each column is a
// random positive split of its stream across nodes (columns of W have
// capacity-weighted mean 1 for equal capacities).
func randomWeights(rng *rand.Rand, n, d int) *mat.Matrix {
	w := mat.NewMatrix(n, d)
	for k := 0; k < d; k++ {
		var sum float64
		col := make([]float64, n)
		for i := range col {
			col[i] = rng.Float64()
			sum += col[i]
		}
		for i := range col {
			w.Set(i, k, col[i]/sum*float64(n))
		}
	}
	return w
}

package bench

import "rodsp/internal/par"

// This file is the bench suites' shared deterministic trial-runner. Every
// suite that repeats independent work — trials of a baseline, rows of a
// parameter sweep — fans it out here instead of looping serially, and every
// helper collects results strictly by index, so the rendered tables are
// byte-identical for any -workers value (including 1).
//
// Two determinism rules the suites follow:
//
//  1. Anything drawn from a *shared* RNG stream is drawn serially, up
//     front, in the exact order the serial loop consumed it; only the
//     deterministic evaluation of those draws fans out (see
//     averageRatiosStd and figure9).
//  2. Trials that need their own randomness derive a seed from the trial
//     index (RunSeededTrials), never from execution order.

// SeedFunc derives the seed of trial t from a suite's base seed.
type SeedFunc func(base int64, t int) int64

// StrideSeed returns the SeedFunc base + t·stride — the derivation the
// suites already used serially, kept so the parallel adoption preserves
// their byte-exact output.
func StrideSeed(stride int64) SeedFunc {
	return func(base int64, t int) int64 { return base + int64(t)*stride }
}

// RunTrials runs fn(t) for every trial in [0, trials) across the par
// worker pool and returns the results ordered by trial index. On error the
// lowest failing trial's error is returned — the same one a serial loop
// would have stopped at.
func RunTrials[T any](trials int, fn func(t int) (T, error)) ([]T, error) {
	return par.Map(trials, fn)
}

// RunSeededTrials is RunTrials for trials that need their own randomness:
// fn additionally receives derive(base, t), a seed that depends only on
// the trial index.
func RunSeededTrials[T any](trials int, base int64, derive SeedFunc, fn func(t int, seed int64) (T, error)) ([]T, error) {
	return par.Map(trials, func(t int) (T, error) { return fn(t, derive(base, t)) })
}

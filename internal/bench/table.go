// Package bench contains one experiment runner per table and figure of the
// paper's evaluation (Section 7), each reproducing the corresponding rows
// or series with this repository's implementations. Runners are
// deterministic given their seeds and print fixed-width text tables.
package bench

import (
	"fmt"
	"strconv"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	b.WriteString(t.Title)
	b.WriteByte('\n')
	if t.Note != "" {
		b.WriteString(t.Note)
		b.WriteByte('\n')
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, widths[i]))
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (header row first) for
// downstream plotting.
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.Header)
	for _, row := range t.Rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			b.WriteByte('"')
			b.WriteString(strings.ReplaceAll(c, `"`, `""`))
			b.WriteByte('"')
		} else {
			b.WriteString(c)
		}
	}
	b.WriteByte('\n')
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// f3 formats a float with 3 decimals.
func f3(x float64) string { return strconv.FormatFloat(x, 'f', 3, 64) }

// f4 formats a float with 4 decimals.
func f4(x float64) string { return strconv.FormatFloat(x, 'f', 4, 64) }

// fg formats a float compactly.
func fg(x float64) string { return strconv.FormatFloat(x, 'g', 4, 64) }

// fi formats an int.
func fi(x int) string { return strconv.Itoa(x) }

// fms formats a duration in seconds as milliseconds.
func fms(sec float64) string { return fmt.Sprintf("%.1fms", sec*1000) }

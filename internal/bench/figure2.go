package bench

import "rodsp/internal/trace"

// Figure2Config drives the trace-variability experiment (Figure 2: "stream
// rates exhibit significant variation over time", plus the self-similarity
// claim that the variation persists across time scales).
type Figure2Config struct {
	Seed      int64
	AggLevels []int // aggregation factors at which CV is re-measured
}

// Defaults fills unset fields.
func (c *Figure2Config) Defaults() {
	if c.AggLevels == nil {
		c.AggLevels = []int{1, 16, 64}
	}
}

// Run generates the PKT/TCP/HTTP stand-in traces and reports the Figure 2
// statistics: standard deviation of the normalized rate (the figure's
// annotation), burstiness across time scales, Hurst exponent, peak-to-mean.
func (c Figure2Config) Run() *Table {
	c.Defaults()
	t := &Table{
		Title:  "Figure 2 — input stream rate variability (synthetic PKT/TCP/HTTP stand-ins)",
		Note:   "std(norm) is the standard deviation of the mean-1 normalized rate, as annotated in the paper's figure",
		Header: []string{"trace", "std(norm)"},
	}
	for _, k := range c.AggLevels[1:] {
		t.Header = append(t.Header, "std@x"+fi(k))
	}
	t.Header = append(t.Header, "hurst", "peak/mean")
	for _, tr := range trace.Presets(c.Seed) {
		n := tr.Normalized()
		row := []string{tr.Name, f3(n.Std())}
		for _, k := range c.AggLevels[1:] {
			row = append(row, f3(n.Aggregate(k).Std()))
		}
		row = append(row, f3(tr.Hurst()), f3(tr.PeakToMean()))
		t.AddRow(row...)
	}
	return t
}

package bench

import (
	"fmt"
	"io"
)

// ExperimentNames lists the experiments Run accepts, in suite order.
var ExperimentNames = []string{
	"figure2", "table2", "figure9", "figure14", "figure15",
	"optimal", "latency", "loadshift", "lowerbound", "joins", "clustering",
	"rodvariants", "dynamic", "ordering", "crossval", "empirical",
}

// RunTables executes one named experiment and returns its tables. quick
// shrinks the parameters for CI-speed runs; the full settings reproduce the
// paper-scale sweeps.
func RunTables(name string, quick bool, seed int64) ([]*Table, error) {
	one := func(t *Table, err error) ([]*Table, error) {
		if err != nil {
			return nil, err
		}
		return []*Table{t}, nil
	}
	switch name {
	case "figure2":
		return []*Table{Figure2Config{Seed: seed}.Run()}, nil
	case "table2":
		return one(Table2())
	case "figure9":
		cfg := Figure9Config{Seed: seed}
		if quick {
			cfg.Matrices = 150
			cfg.Samples = 1000
		}
		return one(cfg.Run())
	case "figure14":
		cfg := Figure14Config{Seed: seed}
		if quick {
			cfg.OpsList = []int{20, 60, 120}
			cfg.Trials = 3
			cfg.Samples = 1200
		}
		return cfg.Run()
	case "figure15":
		cfg := Figure15Config{Seed: seed}
		if quick {
			cfg.StreamsList = []int{2, 4, 6}
			cfg.Trials = 2
			cfg.Samples = 1200
		}
		return one(cfg.Run())
	case "optimal":
		cfg := OptimalCmpConfig{Seed: seed}
		if quick {
			cfg.Trials = 3
			cfg.MaxOps = 8
			cfg.StreamsList = []int{2, 3}
			cfg.Samples = 1000
		}
		return one(cfg.Run())
	case "latency":
		cfg := LatencyConfig{Seed: seed}
		if quick {
			cfg.Streams = 3
			cfg.Nodes = 3
			cfg.UtilLevels = []float64{0.5, 0.8}
			cfg.Duration = 60
		}
		return one(cfg.Run())
	case "loadshift":
		cfg := LoadShiftConfig{Seed: seed}
		if quick {
			cfg.ShiftTrials = 8
			cfg.NoisePoints = 25
		}
		return one(cfg.Run())
	case "lowerbound":
		cfg := LowerBoundConfig{Seed: seed}
		if quick {
			cfg.Trials = 2
			cfg.Samples = 1500
		}
		return one(cfg.Run())
	case "joins":
		cfg := JoinsConfig{Seed: seed}
		if quick {
			cfg.PairsList = []int{1, 2}
			cfg.Trials = 2
			cfg.Samples = 1200
		}
		return one(cfg.Run())
	case "clustering":
		cfg := ClusteringConfig{Seed: seed}
		if quick {
			cfg.XferFactors = []float64{0, 2}
		}
		return one(cfg.Run())
	case "rodvariants":
		cfg := RODVariantsConfig{Seed: seed}
		if quick {
			cfg.OpsList = []int{20, 120}
			cfg.Seeds = 3
			cfg.Samples = 1500
		}
		return one(cfg.Run())
	case "dynamic":
		cfg := DynamicConfig{Seed: seed}
		if quick {
			cfg.Streams = 3
			cfg.Nodes = 3
			cfg.Duration = 80
		}
		return one(cfg.Run())
	case "ordering":
		cfg := OrderingConfig{Seed: seed}
		if quick {
			cfg.OpsList = []int{24, 80}
			cfg.Samples = 1500
		}
		return one(cfg.Run())
	case "crossval":
		cfg := CrossValConfig{Seed: seed}
		if quick {
			cfg.UtilLevels = []float64{0.5}
			cfg.WallSeconds = 2.5
		}
		return one(cfg.Run())
	case "empirical":
		cfg := EmpiricalConfig{Seed: seed}
		if quick {
			cfg.Points = 40
			cfg.SimSeconds = 25
		}
		return one(cfg.Run())
	default:
		return nil, fmt.Errorf("bench: unknown experiment %q (have %v)", name, ExperimentNames)
	}
}

// Run executes one named experiment and writes its rendered table(s).
func Run(w io.Writer, name string, quick bool, seed int64) error {
	tables, err := RunTables(name, quick, seed)
	if err != nil {
		return err
	}
	for _, t := range tables {
		fmt.Fprintln(w, t.String())
	}
	return nil
}

// RunAll executes every experiment in order.
func RunAll(w io.Writer, quick bool, seed int64) error {
	for _, name := range ExperimentNames {
		fmt.Fprintf(w, "==== %s ====\n", name)
		if err := Run(w, name, quick, seed); err != nil {
			return fmt.Errorf("bench: %s: %w", name, err)
		}
	}
	return nil
}

package bench

import (
	"fmt"
	"math"

	"rodsp/internal/core"
	"rodsp/internal/placement"
	"rodsp/internal/query"
	"rodsp/internal/workload"
)

// OptimalCmpConfig drives the small-graph optimality study (Section 7.3.1:
// "the average feasible set size ratio of ROD to the optimal is 0.95 and
// the minimum ratio is 0.82" on graphs of ≤ 20 operators, 2–5 streams, two
// nodes).
type OptimalCmpConfig struct {
	Trials      int
	StreamsList []int
	MaxOps      int // per graph (brute force is exponential in this)
	Samples     int
	Seed        int64
}

// Defaults fills unset fields with tractable parameters.
func (c *OptimalCmpConfig) Defaults() {
	if c.Trials == 0 {
		c.Trials = 10
	}
	if c.StreamsList == nil {
		c.StreamsList = []int{2, 3, 4, 5}
	}
	if c.MaxOps == 0 {
		c.MaxOps = 12
	}
	if c.Samples == 0 {
		c.Samples = 2000
	}
}

// Run compares ROD against the exhaustive optimum per stream count and
// reports the average and minimum ROD/OPT ratio.
func (c OptimalCmpConfig) Run() (*Table, error) {
	c.Defaults()
	caps := homogeneous(2)
	t := &Table{
		Title: "ROD vs optimal on small graphs (two nodes; Section 7.3.1 reports avg 0.95, min 0.82)",
		Note: fmt.Sprintf("%d trials per stream count, ≤%d operators (exhaustive canonical search)",
			c.Trials, c.MaxOps),
		Header: []string{"streams", "trials", "avg ROD/OPT", "min ROD/OPT", "avg OPT ratio", "avg ROD ratio"},
	}
	var allSum, allMin float64 = 0, 2
	allN := 0
	for _, d := range c.StreamsList {
		var sum, min float64 = 0, 2
		var optSum, rodSum float64
		n := 0
		for trial := 0; trial < c.Trials; trial++ {
			per := c.MaxOps / d
			if per == 0 {
				per = 1
			}
			g, err := workload.RandomTrees(workload.TreeConfig{
				Streams: d, OpsPerStream: per, Seed: c.Seed + int64(d*1000+trial),
			})
			if err != nil {
				return nil, err
			}
			lm, err := query.BuildLoadModel(g)
			if err != nil {
				return nil, err
			}
			_, opt, err := placement.Optimal(lm.Coef, caps, placement.OptimalConfig{Samples: c.Samples})
			if err != nil {
				return nil, err
			}
			plan, _, err := core.Place(lm.Coef, caps, core.Config{Selector: core.SelectMaxPlaneDistance})
			if err != nil {
				return nil, err
			}
			rod, err := placement.Evaluate(plan, lm.Coef, caps, c.Samples)
			if err != nil {
				return nil, err
			}
			if opt <= 0 {
				continue
			}
			ratio := rod / opt
			if ratio > 1 { // QMC noise can put ROD a hair above "optimal"
				ratio = 1
			}
			sum += ratio
			optSum += opt
			rodSum += rod
			if ratio < min {
				min = ratio
			}
			n++
		}
		if n == 0 {
			continue
		}
		t.AddRow(fi(d), fi(n), f3(sum/float64(n)), f3(min), f3(optSum/float64(n)), f3(rodSum/float64(n)))
		allSum += sum
		allN += n
		allMin = math.Min(allMin, min)
	}
	if allN > 0 {
		t.AddRow("all", fi(allN), f3(allSum/float64(allN)), f3(allMin), "", "")
	}
	return t, nil
}

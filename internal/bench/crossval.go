package bench

import (
	"fmt"
	"strconv"
	"time"

	"rodsp/internal/core"
	"rodsp/internal/engine"
	"rodsp/internal/obs"
	"rodsp/internal/placement"
	"rodsp/internal/query"
	"rodsp/internal/sim"
	"rodsp/internal/trace"
	"rodsp/internal/workload"
)

// CrossValConfig drives the simulator-vs-prototype cross-validation behind
// the paper's Section 7.3.1 claim: "the simulator results tracked the
// results in Borealis very closely, thus allowing us to trust the simulator
// for experiments in which the total running time in Borealis would be
// prohibitive." The same workload, traces and plans run through both the
// discrete-event simulator and the TCP engine (time-compressed), and the
// per-node utilizations are compared.
type CrossValConfig struct {
	Streams     int
	Nodes       int
	UtilLevels  []float64
	WallSeconds float64 // engine wall-clock drive time per point
	Speedup     float64 // trace-time compression for the engine
	Seed        int64
}

// Defaults fills unset fields.
func (c *CrossValConfig) Defaults() {
	if c.Streams == 0 {
		c.Streams = 3
	}
	if c.Nodes == 0 {
		c.Nodes = 3
	}
	if c.UtilLevels == nil {
		c.UtilLevels = []float64{0.4, 0.7}
	}
	if c.WallSeconds == 0 {
		c.WallSeconds = 4
	}
	if c.Speedup == 0 {
		c.Speedup = 25
	}
}

// Run compares, per algorithm and load level, the simulator's and the
// engine's mean/max node utilization on identical workloads.
func (c CrossValConfig) Run() (*Table, error) {
	c.Defaults()
	g, err := workload.TrafficMonitoring(workload.MonitoringConfig{Streams: c.Streams, Seed: c.Seed})
	if err != nil {
		return nil, err
	}
	lm, err := query.BuildLoadModel(g)
	if err != nil {
		return nil, err
	}
	caps := homogeneous(c.Nodes)

	rodPlan, _, err := core.PlaceBest(lm.Coef, caps, core.Config{}, 3000)
	if err != nil {
		return nil, err
	}
	_, means, err := workload.ScaledTraces(lm, caps.Sum(), 0.6, c.Seed)
	if err != nil {
		return nil, err
	}
	avg, err := lm.ResolveVars(means)
	if err != nil {
		return nil, err
	}
	llfPlan, err := placement.LLF(lm.Coef, caps, avg)
	if err != nil {
		return nil, err
	}
	plans := []struct {
		name string
		plan *placement.Plan
	}{{"ROD", rodPlan}, {"LLF", llfPlan}}

	t := &Table{
		Title: "Simulator vs prototype cross-validation (Section 7.3.1's 'the simulator tracked Borealis closely')",
		Note: fmt.Sprintf("traffic monitoring, %d streams on %d nodes; engine runs %gs wall at %gx time compression",
			c.Streams, c.Nodes, c.WallSeconds, c.Speedup),
		Header: []string{"mean util", "plan", "sim mean(U)", "engine mean(U)", "sim max(U)", "engine max(U)", "|Δmean|"},
	}
	for _, util := range c.UtilLevels {
		traces, _, err := workload.ScaledTraces(lm, caps.Sum(), util, c.Seed)
		if err != nil {
			return nil, err
		}
		for _, p := range plans {
			simMean, simMax, simSeries, err := c.runSim(g, p.plan, caps, traces)
			if err != nil {
				return nil, err
			}
			engMean, engMax, engSeries, err := c.runEngine(g, lm, p.plan, caps, traces)
			if err != nil {
				return nil, err
			}
			// Both runtimes must emit the identical obs metric schema — the
			// contract that makes their series directly comparable.
			if err := sameSchema(simSeries, engSeries); err != nil {
				return nil, err
			}
			delta := simMean - engMean
			if delta < 0 {
				delta = -delta
			}
			t.AddRow(f3(util), p.name, f3(simMean), f3(engMean), f3(simMax), f3(engMax), f3(delta))
		}
	}
	return t, nil
}

// sameSchema verifies the two series sets expose the same metric names.
func sameSchema(a, b *obs.SeriesSet) error {
	an, bn := a.Names(), b.Names()
	if len(an) != len(bn) {
		return fmt.Errorf("bench: obs schema mismatch: sim %v vs engine %v", an, bn)
	}
	for i := range an {
		if an[i] != bn[i] {
			return fmt.Errorf("bench: obs schema mismatch: sim %v vs engine %v", an, bn)
		}
	}
	return nil
}

// utilFromSeries derives per-node utilization figures from sampled obs
// series: the time-average of each node's windowed utilization, plus the
// largest per-node average.
func utilFromSeries(set *obs.SeriesSet, n int) (mean, max float64) {
	for i := 0; i < n; i++ {
		_, vs := set.Series(obs.MetricNodeUtilization, "node", strconv.Itoa(i)).Points()
		var s float64
		for _, v := range vs {
			s += v
		}
		var u float64
		if len(vs) > 0 {
			u = s / float64(len(vs))
		}
		mean += u
		if u > max {
			max = u
		}
	}
	return mean / float64(n), max
}

func (c CrossValConfig) runSim(g *query.Graph, plan *placement.Plan, caps []float64, traces []*trace.Trace) (mean, max float64, set *obs.SeriesSet, err error) {
	sources := map[query.StreamID]*trace.Trace{}
	for i, in := range g.Inputs() {
		sources[in] = traces[i]
	}
	res, err := sim.Run(sim.Config{
		Graph:      g,
		NodeOf:     plan.NodeOf,
		Capacities: caps,
		Sources:    sources,
		Duration:   c.WallSeconds * c.Speedup,
		Seed:       c.Seed,
		MaxEvents:  50_000_000,
		Obs:        &sim.ObsConfig{},
	})
	if err != nil {
		return 0, 0, nil, err
	}
	mean, max = utilFromSeries(res.Series, len(caps))
	return mean, max, res.Series, nil
}

func (c CrossValConfig) runEngine(g *query.Graph, lm *query.LoadModel, plan *placement.Plan, caps []float64, traces []*trace.Trace) (mean, max float64, set *obs.SeriesSet, err error) {
	cl, err := engine.StartCluster(caps)
	if err != nil {
		return 0, 0, nil, err
	}
	defer cl.Close()
	mon := cl.StartMonitor(engine.MonitorConfig{
		Interval: 100 * time.Millisecond,
		LM:       lm,
		Plan:     plan,
		Caps:     caps,
	})
	if err := cl.Deploy(g, plan, caps); err != nil {
		return 0, 0, nil, err
	}
	if err := cl.Start(); err != nil {
		return 0, 0, nil, err
	}
	inputNodes := engine.InputNodes(g, plan)
	addrs := cl.Addrs()
	done := make(chan error, len(traces))
	for i, in := range g.Inputs() {
		var dests []string
		for _, n := range inputNodes[in] {
			dests = append(dests, addrs[n])
		}
		src := &engine.SourceDriver{
			Stream: in,
			// The driver multiplies rates by Speedup; divide the mean out so
			// the wall-clock load matches the simulated one.
			Trace:   traces[i].ScaleToMean(traces[i].Mean() / c.Speedup),
			Addrs:   dests,
			Speedup: c.Speedup,
			MaxRate: 6000,
			Count:   mon.SourceCounter(in),
		}
		go func() {
			_, err := src.Run(time.Duration(c.WallSeconds*float64(time.Second)), nil)
			done <- err
		}()
	}
	for range traces {
		if e := <-done; e != nil {
			return 0, 0, nil, e
		}
	}
	time.Sleep(200 * time.Millisecond)
	mean, max = utilFromSeries(mon.Series(), len(caps))
	return mean, max, mon.Series(), nil
}

package bench

import (
	"fmt"
	"time"

	"rodsp/internal/core"
	"rodsp/internal/engine"
	"rodsp/internal/placement"
	"rodsp/internal/query"
	"rodsp/internal/sim"
	"rodsp/internal/trace"
	"rodsp/internal/workload"
)

// CrossValConfig drives the simulator-vs-prototype cross-validation behind
// the paper's Section 7.3.1 claim: "the simulator results tracked the
// results in Borealis very closely, thus allowing us to trust the simulator
// for experiments in which the total running time in Borealis would be
// prohibitive." The same workload, traces and plans run through both the
// discrete-event simulator and the TCP engine (time-compressed), and the
// per-node utilizations are compared.
type CrossValConfig struct {
	Streams     int
	Nodes       int
	UtilLevels  []float64
	WallSeconds float64 // engine wall-clock drive time per point
	Speedup     float64 // trace-time compression for the engine
	Seed        int64
}

// Defaults fills unset fields.
func (c *CrossValConfig) Defaults() {
	if c.Streams == 0 {
		c.Streams = 3
	}
	if c.Nodes == 0 {
		c.Nodes = 3
	}
	if c.UtilLevels == nil {
		c.UtilLevels = []float64{0.4, 0.7}
	}
	if c.WallSeconds == 0 {
		c.WallSeconds = 4
	}
	if c.Speedup == 0 {
		c.Speedup = 25
	}
}

// Run compares, per algorithm and load level, the simulator's and the
// engine's mean/max node utilization on identical workloads.
func (c CrossValConfig) Run() (*Table, error) {
	c.Defaults()
	g, err := workload.TrafficMonitoring(workload.MonitoringConfig{Streams: c.Streams, Seed: c.Seed})
	if err != nil {
		return nil, err
	}
	lm, err := query.BuildLoadModel(g)
	if err != nil {
		return nil, err
	}
	caps := homogeneous(c.Nodes)

	rodPlan, _, err := core.PlaceBest(lm.Coef, caps, core.Config{}, 3000)
	if err != nil {
		return nil, err
	}
	_, means, err := workload.ScaledTraces(lm, caps.Sum(), 0.6, c.Seed)
	if err != nil {
		return nil, err
	}
	avg, err := lm.ResolveVars(means)
	if err != nil {
		return nil, err
	}
	llfPlan, err := placement.LLF(lm.Coef, caps, avg)
	if err != nil {
		return nil, err
	}
	plans := []struct {
		name string
		plan *placement.Plan
	}{{"ROD", rodPlan}, {"LLF", llfPlan}}

	t := &Table{
		Title: "Simulator vs prototype cross-validation (Section 7.3.1's 'the simulator tracked Borealis closely')",
		Note: fmt.Sprintf("traffic monitoring, %d streams on %d nodes; engine runs %gs wall at %gx time compression",
			c.Streams, c.Nodes, c.WallSeconds, c.Speedup),
		Header: []string{"mean util", "plan", "sim mean(U)", "engine mean(U)", "sim max(U)", "engine max(U)", "|Δmean|"},
	}
	for _, util := range c.UtilLevels {
		traces, _, err := workload.ScaledTraces(lm, caps.Sum(), util, c.Seed)
		if err != nil {
			return nil, err
		}
		for _, p := range plans {
			simMean, simMax, err := c.runSim(g, p.plan, caps, traces)
			if err != nil {
				return nil, err
			}
			engMean, engMax, err := c.runEngine(g, p.plan, caps, traces)
			if err != nil {
				return nil, err
			}
			delta := simMean - engMean
			if delta < 0 {
				delta = -delta
			}
			t.AddRow(f3(util), p.name, f3(simMean), f3(engMean), f3(simMax), f3(engMax), f3(delta))
		}
	}
	return t, nil
}

func (c CrossValConfig) runSim(g *query.Graph, plan *placement.Plan, caps []float64, traces []*trace.Trace) (mean, max float64, err error) {
	sources := map[query.StreamID]*trace.Trace{}
	for i, in := range g.Inputs() {
		sources[in] = traces[i]
	}
	res, err := sim.Run(sim.Config{
		Graph:      g,
		NodeOf:     plan.NodeOf,
		Capacities: caps,
		Sources:    sources,
		Duration:   c.WallSeconds * c.Speedup,
		Seed:       c.Seed,
		MaxEvents:  50_000_000,
	})
	if err != nil {
		return 0, 0, err
	}
	var sum float64
	for _, u := range res.Utilization {
		sum += u
	}
	return sum / float64(len(res.Utilization)), res.MaxUtilization(), nil
}

func (c CrossValConfig) runEngine(g *query.Graph, plan *placement.Plan, caps []float64, traces []*trace.Trace) (mean, max float64, err error) {
	cl, err := engine.StartCluster(caps)
	if err != nil {
		return 0, 0, err
	}
	defer cl.Close()
	if err := cl.Deploy(g, plan, caps); err != nil {
		return 0, 0, err
	}
	if err := cl.Start(); err != nil {
		return 0, 0, err
	}
	inputNodes := engine.InputNodes(g, plan)
	addrs := cl.Addrs()
	done := make(chan error, len(traces))
	for i, in := range g.Inputs() {
		var dests []string
		for _, n := range inputNodes[in] {
			dests = append(dests, addrs[n])
		}
		src := &engine.SourceDriver{
			Stream: in,
			// The driver multiplies rates by Speedup; divide the mean out so
			// the wall-clock load matches the simulated one.
			Trace:   traces[i].ScaleToMean(traces[i].Mean() / c.Speedup),
			Addrs:   dests,
			Speedup: c.Speedup,
			MaxRate: 6000,
		}
		go func() {
			_, err := src.Run(time.Duration(c.WallSeconds*float64(time.Second)), nil)
			done <- err
		}()
	}
	for range traces {
		if e := <-done; e != nil {
			return 0, 0, e
		}
	}
	time.Sleep(200 * time.Millisecond)
	sts, err := cl.Stats()
	if err != nil {
		return 0, 0, err
	}
	var sum float64
	for _, s := range sts {
		sum += s.Utilization
		if s.Utilization > max {
			max = s.Utilization
		}
	}
	return sum / float64(len(sts)), max, nil
}

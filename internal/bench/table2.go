package bench

import (
	"fmt"

	"rodsp/internal/feasible"
	"rodsp/internal/mat"
	"rodsp/internal/placement"
	"rodsp/internal/query"
)

// Example2Graph builds the paper's running example (Figure 4 / Example 2):
// I1 → o1 → o2, I2 → o3 → o4 with costs (4, 6, 9, 4) and selectivities
// s1 = 1, s3 = 0.5, so L^o = [[4 0] [6 0] [0 9] [0 2]].
func Example2Graph() *query.Graph {
	b := query.NewBuilder()
	i1 := b.Input("I1")
	i2 := b.Input("I2")
	s1 := b.Delay("o1", 4, 1, i1)
	b.Delay("o2", 6, 1, s1)
	s3 := b.Delay("o3", 9, 0.5, i2)
	b.Delay("o4", 4, 1, s3)
	return b.MustBuild()
}

// Table2Plans returns the three Example 2 distribution plans on two nodes:
// (a) {o1,o2 | o3,o4}, (b) {o1,o4 | o2,o3}, (c) {o1,o3 | o2,o4}.
func Table2Plans() map[string]*placement.Plan {
	mk := func(nodeOf ...int) *placement.Plan {
		p, err := placement.NewPlan(nodeOf, 2)
		if err != nil {
			panic(err)
		}
		return p
	}
	return map[string]*placement.Plan{
		"(a)": mk(0, 0, 1, 1),
		"(b)": mk(0, 1, 1, 0),
		"(c)": mk(0, 1, 0, 1),
	}
}

// Table2 reproduces Table 2 and Figures 5–6: the node coefficient matrix of
// each example plan, its exact feasible-set size (d = 2, so exact polygon
// clipping), and the ratio to the ideal feasible set of Theorem 1.
func Table2() (*Table, error) {
	g := Example2Graph()
	lm, err := query.BuildLoadModel(g)
	if err != nil {
		return nil, err
	}
	c := mat.VecOf(1, 1)
	lk := lm.CoefSums()
	idealVol, err := feasible.IdealVolume(lk, c)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Table 2 / Figures 5-6 — Example 2 plans (C1=C2=1, L^o rows [4 0][6 0][0 9][0 2])",
		Note: fmt.Sprintf("ideal feasible set size V(F*) = %s (= C_T^2 / (2! l1 l2) with l=(%g,%g))",
			fg(idealVol), lk[0], lk[1]),
		Header: []string{"plan", "N1 coef", "N2 coef", "ratio-to-ideal", "V(F)", "min plane dist", "r*"},
	}
	names := []string{"(a)", "(b)", "(c)"}
	plans := Table2Plans()
	for _, name := range names {
		p := plans[name]
		ln := p.NodeCoef(lm.Coef)
		w, err := feasible.Weights(ln, c, lk)
		if err != nil {
			return nil, err
		}
		ratio := feasible.ExactRatio2D(w)
		t.AddRow(
			name,
			ln.Row(0).String(),
			ln.Row(1).String(),
			f4(ratio),
			fg(ratio*idealVol),
			f4(feasible.MinPlaneDistance(w)),
			f4(feasible.IdealPlaneDistance(2)),
		)
	}
	return t, nil
}

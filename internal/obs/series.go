package obs

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Series is one ring-buffered time series: (t, value) points where t is
// seconds since the run/sampler start (wall time for the engine, virtual
// time for the simulator). Once full, new points overwrite the oldest.
type Series struct {
	Name   string
	Labels []string // k1,v1,k2,v2,...

	mu    sync.Mutex
	times []float64
	vals  []float64
	head  int // index of the oldest point
	n     int // number of live points
}

func newSeries(name string, labels []string, capacity int) *Series {
	return &Series{
		Name:   name,
		Labels: labels,
		times:  make([]float64, capacity),
		vals:   make([]float64, capacity),
	}
}

// Append records one point.
func (s *Series) Append(t, v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n < len(s.vals) {
		i := (s.head + s.n) % len(s.vals)
		s.times[i], s.vals[i] = t, v
		s.n++
		return
	}
	s.times[s.head], s.vals[s.head] = t, v
	s.head = (s.head + 1) % len(s.vals)
}

// Points returns the retained points oldest-first.
func (s *Series) Points() (ts, vs []float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts = make([]float64, s.n)
	vs = make([]float64, s.n)
	for i := 0; i < s.n; i++ {
		j := (s.head + i) % len(s.vals)
		ts[i], vs[i] = s.times[j], s.vals[j]
	}
	return ts, vs
}

// Last returns the most recent point, ok=false when empty.
func (s *Series) Last() (t, v float64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return 0, 0, false
	}
	i := (s.head + s.n - 1) % len(s.vals)
	return s.times[i], s.vals[i], true
}

// Len returns the number of retained points.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Min returns the smallest retained value (ok=false when empty).
func (s *Series) Min() (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return 0, false
	}
	min := s.vals[s.head]
	for i := 1; i < s.n; i++ {
		if v := s.vals[(s.head+i)%len(s.vals)]; v < min {
			min = v
		}
	}
	return min, true
}

// ID renders the series identity as name{k="v",...}.
func (s *Series) ID() string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('{')
	for i := 0; i+1 < len(s.Labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", s.Labels[i], s.Labels[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// SeriesSet is a registry of ring-buffered series keyed by name + labels.
type SeriesSet struct {
	mu       sync.Mutex
	capacity int
	order    []*Series
	byKey    map[string]*Series
}

// NewSeriesSet returns an empty set whose series retain up to capacity
// points each (default 2048 when capacity <= 0).
func NewSeriesSet(capacity int) *SeriesSet {
	if capacity <= 0 {
		capacity = 2048
	}
	return &SeriesSet{capacity: capacity, byKey: map[string]*Series{}}
}

// Series returns (creating on first use) the series with the given name and
// label pairs.
func (ss *SeriesSet) Series(name string, labels ...string) *Series {
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: series %q has odd label list %v", name, labels))
	}
	key := name + "\xfe" + labelKey(labels)
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if s := ss.byKey[key]; s != nil {
		return s
	}
	cp := make([]string, len(labels))
	copy(cp, labels)
	s := newSeries(name, cp, ss.capacity)
	ss.byKey[key] = s
	ss.order = append(ss.order, s)
	return s
}

// All returns every series, sorted by identity for determinism.
func (ss *SeriesSet) All() []*Series {
	ss.mu.Lock()
	out := make([]*Series, len(ss.order))
	copy(out, ss.order)
	ss.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// Names returns the sorted distinct metric names present in the set — the
// series schema, compared across the simulator and the engine by the
// cross-validation harness.
func (ss *SeriesSet) Names() []string {
	seen := map[string]bool{}
	for _, s := range ss.All() {
		seen[s.Name] = true
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// seriesJSON is the wire form of one series in /series responses.
type seriesJSON struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Points [][2]float64      `json:"points"`
}

// WriteJSON renders {"series":[...]} with points as [t, v] pairs.
func (ss *SeriesSet) WriteJSON(w io.Writer) error {
	var out struct {
		Series []seriesJSON `json:"series"`
	}
	for _, s := range ss.All() {
		ts, vs := s.Points()
		sj := seriesJSON{Name: s.Name, Points: make([][2]float64, len(ts))}
		if len(s.Labels) > 0 {
			sj.Labels = map[string]string{}
			for i := 0; i+1 < len(s.Labels); i += 2 {
				sj.Labels[s.Labels[i]] = s.Labels[i+1]
			}
		}
		for i := range ts {
			sj.Points[i] = [2]float64{ts[i], vs[i]}
		}
		out.Series = append(out.Series, sj)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&out)
}

// WriteCSV renders the set in long form: time,series,value — one row per
// point, series identified as name{k="v",...}.
func (ss *SeriesSet) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time", "series", "value"}); err != nil {
		return err
	}
	for _, s := range ss.All() {
		id := s.ID()
		ts, vs := s.Points()
		for i := range ts {
			row := []string{
				strconv.FormatFloat(ts[i], 'g', -1, 64),
				id,
				strconv.FormatFloat(vs[i], 'g', -1, 64),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// Sampler polls registered sources at a configurable interval and appends
// each reading to its ring-buffered series. Sources are plain probes
// (func() float64) or registry gauges/counters; the clock is supplied by
// the caller, so the engine samples wall time while the simulator samples
// virtual time through the same machinery.
type Sampler struct {
	set *SeriesSet

	mu     sync.Mutex
	probes []samplerProbe
}

type samplerProbe struct {
	s  *Series
	fn func() float64
}

// NewSampler returns a sampler writing into set (a fresh default set when
// nil).
func NewSampler(set *SeriesSet) *Sampler {
	if set == nil {
		set = NewSeriesSet(0)
	}
	return &Sampler{set: set}
}

// Set returns the underlying series set.
func (sp *Sampler) Set() *SeriesSet { return sp.set }

// Probe registers a source polled on every Sample call.
func (sp *Sampler) Probe(name string, fn func() float64, labels ...string) *Series {
	s := sp.set.Series(name, labels...)
	sp.mu.Lock()
	sp.probes = append(sp.probes, samplerProbe{s: s, fn: fn})
	sp.mu.Unlock()
	return s
}

// ProbeGauge registers a registry gauge as a source.
func (sp *Sampler) ProbeGauge(name string, g *Gauge, labels ...string) *Series {
	return sp.Probe(name, g.Value, labels...)
}

// ProbeCounter registers a registry counter as a source (sampled as its raw
// cumulative value).
func (sp *Sampler) ProbeCounter(name string, c *Counter, labels ...string) *Series {
	return sp.Probe(name, func() float64 { return float64(c.Value()) }, labels...)
}

// Sample polls every registered source once, stamping the readings with t
// (seconds since the caller's chosen epoch).
func (sp *Sampler) Sample(t float64) {
	sp.mu.Lock()
	probes := make([]samplerProbe, len(sp.probes))
	copy(probes, sp.probes)
	sp.mu.Unlock()
	for _, p := range probes {
		p.s.Append(t, p.fn())
	}
}

// Run samples every interval of wall time until stop closes, stamping
// readings with seconds since Run began. It blocks; run it in a goroutine.
func (sp *Sampler) Run(interval time.Duration, stop <-chan struct{}) {
	if interval <= 0 {
		interval = 200 * time.Millisecond
	}
	start := time.Now()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case now := <-tick.C:
			sp.Sample(now.Sub(start).Seconds())
		}
	}
}

package obs

import (
	"math"
	"math/rand"
	"testing"
)

// TestHistogramBucketBoundaries pins the boundary convention: a value equal
// to an upper bound lands in that bound's bucket (le semantics), values
// above every bound land in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	cases := []struct {
		x      float64
		bucket int
	}{
		{-1, 0}, {0, 0}, {0.999, 0}, {1, 0},
		{1.0001, 1}, {2, 1},
		{2.5, 2}, {4, 2},
		{4.0001, 3}, {1e9, 3},
	}
	for _, c := range cases {
		before := h.BucketCount(c.bucket)
		h.Observe(c.x)
		if h.BucketCount(c.bucket) != before+1 {
			t.Fatalf("Observe(%g) did not land in bucket %d", c.x, c.bucket)
		}
	}
	if h.Count() != int64(len(cases)) {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestHistogramBadBoundsPanic(t *testing.T) {
	for _, bounds := range [][]float64{{}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("bounds %v must panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

// TestHistogramQuantileErrorBound checks the interpolated quantile estimate
// against the exact sample quantile: the error must stay within one bucket
// width at the quantile's location.
func TestHistogramQuantileErrorBound(t *testing.T) {
	const width = 0.05
	var bounds []float64
	for b := width; b <= 1.0+1e-9; b += width {
		bounds = append(bounds, b)
	}
	h := NewHistogram(bounds)
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 20000)
	for i := range xs {
		// Skewed distribution: squared uniform stresses uneven buckets.
		u := rng.Float64()
		xs[i] = u * u
	}
	for _, x := range xs {
		h.Observe(x)
	}
	for _, p := range []float64{10, 50, 90, 95, 99} {
		exact, ok := Quantiles(xs, p)
		if !ok {
			t.Fatal("exact quantiles not ok")
		}
		est, ok := h.Quantile(p)
		if !ok {
			t.Fatalf("histogram quantile p%g not ok", p)
		}
		if err := math.Abs(est - exact[0]); err > width {
			t.Fatalf("p%g: estimate %g vs exact %g, error %g > bucket width %g", p, est, exact[0], err, width)
		}
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	h := NewHistogram([]float64{1})
	if _, ok := h.Quantile(50); ok {
		t.Fatal("empty histogram must report ok=false")
	}
}

func TestQuantilesEmptyAndSingle(t *testing.T) {
	if qs, ok := Quantiles(nil, 50, 99); ok || qs[0] != 0 || qs[1] != 0 {
		t.Fatalf("empty input: qs=%v ok=%v", qs, ok)
	}
	qs, ok := Quantiles([]float64{3}, 0, 50, 100)
	if !ok || qs[0] != 3 || qs[1] != 3 || qs[2] != 3 {
		t.Fatalf("single sample: qs=%v ok=%v", qs, ok)
	}
	// Linear interpolation between closest ranks (matches stats.Percentile).
	qs, _ = Quantiles([]float64{4, 1, 2, 3}, 50)
	if qs[0] != 2.5 {
		t.Fatalf("p50 of 1..4 = %g, want 2.5", qs[0])
	}
	// Out-of-range percentiles clamp instead of panicking.
	qs, _ = Quantiles([]float64{1, 2}, -5, 200)
	if qs[0] != 1 || qs[1] != 2 {
		t.Fatalf("clamped quantiles = %v", qs)
	}
}

func TestSummarize(t *testing.T) {
	if _, ok := Summarize(nil); ok {
		t.Fatal("empty summary must be ok=false")
	}
	s, ok := Summarize([]float64{1, 2, 3, 4})
	if !ok || s.Count != 4 || s.Mean != 2.5 || s.Max != 4 {
		t.Fatalf("summary = %+v ok=%v", s, ok)
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Value() != 0 {
		t.Fatal("fresh EWMA must read 0")
	}
	e.Observe(10)
	if e.Value() != 10 {
		t.Fatalf("first observation must seed: %g", e.Value())
	}
	e.Observe(20)
	if e.Value() != 15 {
		t.Fatalf("after 20: %g", e.Value())
	}
	// Invalid alpha falls back to the default rather than dividing by zero.
	if NewEWMA(0).alpha != 0.4 || NewEWMA(2).alpha != 0.4 {
		t.Fatal("invalid alpha must fall back to default")
	}
}

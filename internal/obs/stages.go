package obs

// Data-plane stage taxonomy for the causal trace decomposition. A sampled
// tuple carries the timestamp of its last stage boundary; at each boundary
// the elapsed time is recorded against one of these stages, so the stage
// durations telescope exactly to the end-to-end sink latency:
//
//	transit  source emit (or outbox ship) → ingress admit; covers the
//	         network hop and relay re-entry at intermediate nodes
//	queue    ingress admit → worker dequeue (ingress-queue wait)
//	service  worker dequeue → operator outputs ready, including the
//	         virtual-CPU pacing that models service time
//	outbox   egress routing → outbox ship onto the wire (outbox residence)
//	deliver  final ship → sink collector receive
const (
	StageTransit = iota
	StageQueue
	StageService
	StageOutbox
	StageDeliver
	NumStages
)

// stageNames is indexed by the Stage* constants.
var stageNames = [NumStages]string{"transit", "queue", "service", "outbox", "deliver"}

// StageName returns the label value for a stage index ("" out of range).
func StageName(stage int) string {
	if stage < 0 || stage >= NumStages {
		return ""
	}
	return stageNames[stage]
}

// Stage metric names, shared by the engine monitor and the sim observer so
// the two runtimes keep an identical series schema.
const (
	// MetricStageLatency is the per-stage latency histogram (seconds),
	// labelled stage="transit"|"queue"|"service"|"outbox"|"deliver".
	MetricStageLatency = "rodsp_stage_latency_seconds"
	// MetricStageLatencyQuantile carries the sampled per-stage p50/p99
	// series (labels stage=..., quantile="p50"|"p99").
	MetricStageLatencyQuantile = "rodsp_stage_latency_quantile_seconds"
	// MetricStageTuples counts stage boundary crossings by sampled tuples.
	MetricStageTuples = "rodsp_stage_tuples_total"
)

// StageLatencyBuckets are the histogram upper bounds (seconds) for stage
// durations: finer than the sink buckets at the low end because individual
// hops (a queue wait, a loopback network transit) sit well under 1 ms.
func StageLatencyBuckets() []float64 {
	return []float64{
		0.00005, 0.0001, 0.0002, 0.0005,
		0.001, 0.002, 0.005, 0.01, 0.02, 0.05,
		0.1, 0.2, 0.5, 1, 2, 5, 10, 30, 60,
	}
}

// StageSet bundles the per-stage latency histograms and crossing counters.
// A nil *StageSet is a valid no-op observer, so hot paths can call Observe
// unconditionally behind their sampling branch.
type StageSet struct {
	hists  [NumStages]*Histogram
	counts [NumStages]*Counter
}

// NewStageSet registers (or re-binds) the stage series in reg.
func NewStageSet(reg *Registry) *StageSet {
	s := &StageSet{}
	for i := 0; i < NumStages; i++ {
		s.hists[i] = reg.Histogram(MetricStageLatency, StageLatencyBuckets(), "stage", stageNames[i])
		s.counts[i] = reg.Counter(MetricStageTuples, "stage", stageNames[i])
	}
	return s
}

// Observe records one stage crossing of sec seconds. Negative durations
// (wall-clock steps between hosts) clamp to zero so the telescoped sum
// stays comparable to the sink latency.
func (s *StageSet) Observe(stage int, sec float64) {
	if s == nil || stage < 0 || stage >= NumStages {
		return
	}
	if sec < 0 {
		sec = 0
	}
	s.hists[stage].Observe(sec)
	s.counts[stage].Inc()
}

// Hist returns the stage's histogram (nil for a nil set or bad index).
func (s *StageSet) Hist(stage int) *Histogram {
	if s == nil || stage < 0 || stage >= NumStages {
		return nil
	}
	return s.hists[stage]
}

// Count returns the stage's crossing count.
func (s *StageSet) Count(stage int) int64 {
	if s == nil || stage < 0 || stage >= NumStages {
		return 0
	}
	return s.counts[stage].Value()
}

// SumSeconds returns the total observed seconds across all stages — on a
// lossless fully-sampled run this telescopes to the sink histogram's Sum.
func (s *StageSet) SumSeconds() float64 {
	if s == nil {
		return 0
	}
	var sum float64
	for i := 0; i < NumStages; i++ {
		sum += s.hists[i].Sum()
	}
	return sum
}

package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestEventLogBasics(t *testing.T) {
	l := NewEventLog(16)
	l.Emit(LevelInfo, EventDeploy, "node", 0, "ops", 3)
	l.Emit(LevelWarn, EventControlError, "err", "boom")
	events := l.Events()
	if len(events) != 2 {
		t.Fatalf("%d events", len(events))
	}
	if events[0].Type != EventDeploy || events[0].Fields["ops"] != 3 {
		t.Fatalf("event 0 = %+v", events[0])
	}
	if events[1].Level != LevelWarn {
		t.Fatalf("event 1 = %+v", events[1])
	}
	if l.Count(EventControlError) != 1 {
		t.Fatal("count mismatch")
	}
	if e, ok := l.Find(EventDeploy); !ok || e.Seq != 1 {
		t.Fatalf("find = %+v %v", e, ok)
	}
	if _, ok := l.Find("missing"); ok {
		t.Fatal("found a missing type")
	}
}

func TestEventLogNilSafe(t *testing.T) {
	var l *EventLog
	l.Emit(LevelInfo, "x")
	l.EmitAt(1, LevelInfo, "x")
	l.SetWriter(&bytes.Buffer{})
	if l.Events() != nil || l.Count("x") != 0 {
		t.Fatal("nil log must be empty")
	}
}

func TestEventLogRingRetention(t *testing.T) {
	l := NewEventLog(4)
	for i := 0; i < 10; i++ {
		l.EmitAt(float64(i), LevelInfo, "tick", "i", i)
	}
	events := l.Events()
	if len(events) != 4 {
		t.Fatalf("%d retained", len(events))
	}
	if events[0].Fields["i"] != 6 || events[3].Fields["i"] != 9 {
		t.Fatalf("retained window = %+v", events)
	}
	// Seq keeps counting across evictions.
	if events[3].Seq != 10 {
		t.Fatalf("last seq = %d", events[3].Seq)
	}
}

// TestEventLogOrderingConcurrent asserts the total order: with many
// concurrent emitters, retained events have strictly increasing Seq and
// non-decreasing timestamps in log order, and no event is lost.
func TestEventLogOrderingConcurrent(t *testing.T) {
	const workers, perWorker = 8, 500
	l := NewEventLog(workers * perWorker)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				l.Emit(LevelInfo, "tick", "w", w, "i", i)
			}
		}(w)
	}
	wg.Wait()
	events := l.Events()
	if len(events) != workers*perWorker {
		t.Fatalf("%d events, want %d", len(events), workers*perWorker)
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq != events[i-1].Seq+1 {
			t.Fatalf("seq gap at %d: %d then %d", i, events[i-1].Seq, events[i].Seq)
		}
		if events[i].T < events[i-1].T {
			t.Fatalf("timestamp regression at %d: %g then %g", i, events[i-1].T, events[i].T)
		}
	}
}

func TestEventLogJSONLinesWriter(t *testing.T) {
	var buf bytes.Buffer
	l := NewEventLog(8)
	l.SetWriter(&buf)
	l.Emit(LevelInfo, EventOverloadOnset, "node", 1, "util", 0.99)
	l.Emit(LevelInfo, EventOverloadClear, "node", 1)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines", len(lines))
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatal(err)
	}
	if e.Type != EventOverloadOnset || e.Fields["node"] != float64(1) {
		t.Fatalf("line 0 = %+v", e)
	}

	var wj bytes.Buffer
	if err := l.WriteJSON(&wj); err != nil {
		t.Fatal(err)
	}
	var arr []Event
	if err := json.Unmarshal(wj.Bytes(), &arr); err != nil {
		t.Fatal(err)
	}
	if len(arr) != 2 || arr[1].Type != EventOverloadClear {
		t.Fatalf("array = %+v", arr)
	}
}

type failingWriter struct{ n int }

func (f *failingWriter) Write(p []byte) (int, error) {
	f.n++
	return 0, bytes.ErrTooLarge
}

func TestEventLogWriterFailureDisablesSink(t *testing.T) {
	l := NewEventLog(8)
	fw := &failingWriter{}
	l.SetWriter(fw)
	l.Emit(LevelInfo, "a")
	l.Emit(LevelInfo, "b")
	if fw.n != 1 {
		t.Fatalf("sink called %d times, want 1 (disabled after failure)", fw.n)
	}
	if len(l.Events()) != 2 {
		t.Fatal("ring must keep working after sink failure")
	}
}

package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Run grades, ordered from best to worst.
const (
	GradePass     = "pass"
	GradeDegraded = "degraded"
	GradeFail     = "fail"
)

// SLOSpec is a per-run service-level objective: a p99 latency target with a
// degraded band, an optional zero-shed requirement, and an optional drop
// budget. The zero value grades every run as pass.
type SLOSpec struct {
	// P99Ms is the p99 sink-latency target in milliseconds; 0 disables the
	// latency gate.
	P99Ms float64 `json:"p99_ms,omitempty"`
	// DegradedFactor widens the latency target for the degraded band:
	// p99 ≤ P99Ms is pass, p99 ≤ DegradedFactor×P99Ms is degraded, beyond
	// is fail. Defaults to 1.5 when 0.
	DegradedFactor float64 `json:"degraded_factor,omitempty"`
	// ZeroShed fails the run if any tuple was shed at an ingress queue.
	ZeroShed bool `json:"zero_shed,omitempty"`
	// MaxDrops is the budget for data-plane drops (outbox overflow/faults
	// plus no-route discards). Negative disables the gate.
	MaxDrops int64 `json:"max_drops"`
}

// ParseSLOSpec parses a comma-separated spec such as
//
//	p99=250ms,zero-shed,max-drops=100
//
// Latency values accept time.ParseDuration syntax. Unknown keys error.
func ParseSLOSpec(s string) (SLOSpec, error) {
	spec := SLOSpec{MaxDrops: -1}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, hasVal := strings.Cut(part, "=")
		switch key {
		case "p99":
			if !hasVal {
				return spec, fmt.Errorf("obs: slo term %q needs a duration value", part)
			}
			d, err := time.ParseDuration(val)
			if err != nil {
				return spec, fmt.Errorf("obs: slo p99 %q: %w", val, err)
			}
			spec.P99Ms = float64(d) / float64(time.Millisecond)
		case "degraded-factor":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 1 {
				return spec, fmt.Errorf("obs: slo degraded-factor %q must be a number ≥ 1", val)
			}
			spec.DegradedFactor = f
		case "zero-shed":
			if hasVal {
				return spec, fmt.Errorf("obs: slo term %q takes no value", part)
			}
			spec.ZeroShed = true
		case "max-drops":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 0 {
				return spec, fmt.Errorf("obs: slo max-drops %q must be a non-negative integer", val)
			}
			spec.MaxDrops = n
		default:
			return spec, fmt.Errorf("obs: unknown slo term %q (want p99=DUR, degraded-factor=F, zero-shed, max-drops=N)", part)
		}
	}
	return spec, nil
}

// Empty reports whether the spec gates nothing.
func (s SLOSpec) Empty() bool {
	return s.P99Ms <= 0 && !s.ZeroShed && s.MaxDrops < 0
}

// String renders the spec back in ParseSLOSpec syntax.
func (s SLOSpec) String() string {
	var terms []string
	if s.P99Ms > 0 {
		terms = append(terms, fmt.Sprintf("p99=%gms", s.P99Ms))
	}
	if s.DegradedFactor > 0 && s.DegradedFactor != 1.5 {
		terms = append(terms, fmt.Sprintf("degraded-factor=%g", s.DegradedFactor))
	}
	if s.ZeroShed {
		terms = append(terms, "zero-shed")
	}
	if s.MaxDrops >= 0 {
		terms = append(terms, fmt.Sprintf("max-drops=%d", s.MaxDrops))
	}
	if len(terms) == 0 {
		return "(empty)"
	}
	return strings.Join(terms, ",")
}

// Grade grades one run against the spec. p99Ms is the observed sink p99 in
// milliseconds, shed the total ingress-shed count, drops the total
// data-plane drop count. The reasons explain every non-pass contribution.
func (s SLOSpec) Grade(p99Ms float64, shed, drops int64) (string, []string) {
	grade := GradePass
	var reasons []string
	worsen := func(g, reason string) {
		reasons = append(reasons, reason)
		if g == GradeFail || grade == GradeFail {
			grade = GradeFail
		} else {
			grade = GradeDegraded
		}
	}
	if s.P99Ms > 0 {
		factor := s.DegradedFactor
		if factor <= 0 {
			factor = 1.5
		}
		switch {
		case p99Ms <= s.P99Ms:
		case p99Ms <= factor*s.P99Ms:
			worsen(GradeDegraded, fmt.Sprintf("p99 %.2fms exceeds target %gms (within degraded band %.2fms)",
				p99Ms, s.P99Ms, factor*s.P99Ms))
		default:
			worsen(GradeFail, fmt.Sprintf("p99 %.2fms exceeds degraded band %.2fms (target %gms)",
				p99Ms, factor*s.P99Ms, s.P99Ms))
		}
	}
	if s.ZeroShed && shed > 0 {
		worsen(GradeFail, fmt.Sprintf("%d tuples shed under zero-shed requirement", shed))
	}
	if s.MaxDrops >= 0 && drops > s.MaxDrops {
		worsen(GradeFail, fmt.Sprintf("%d tuples dropped, budget %d", drops, s.MaxDrops))
	}
	return grade, reasons
}

// StageReport is one stage's latency summary inside a RunReport.
type StageReport struct {
	Stage  string  `json:"stage"`
	Count  int64   `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
}

// StageReportFrom summarizes a StageSet's histograms (nil set → nil).
func StageReportFrom(set *StageSet) []StageReport {
	if set == nil {
		return nil
	}
	out := make([]StageReport, 0, NumStages)
	for i := 0; i < NumStages; i++ {
		h := set.Hist(i)
		r := StageReport{Stage: StageName(i), Count: h.Count()}
		if r.Count > 0 {
			r.MeanMs = h.Sum() / float64(r.Count) * 1000
			if v, ok := h.Quantile(50); ok {
				r.P50Ms = v * 1000
			}
			if v, ok := h.Quantile(99); ok {
				r.P99Ms = v * 1000
			}
		}
		out = append(out, r)
	}
	return out
}

// RunReport is the machine-readable outcome of one graded run, written by
// rodload and rodcheck and archived/gated by CI.
type RunReport struct {
	Harness  string   `json:"harness"` // "rodload" | "rodcheck"
	Grade    string   `json:"grade"`   // pass | degraded | fail
	Reasons  []string `json:"reasons,omitempty"`
	SLO      SLOSpec  `json:"slo"`
	Scenario string   `json:"scenario,omitempty"`

	P50Ms      float64 `json:"p50_ms"`
	P99Ms      float64 `json:"p99_ms"`
	SinkTuples int64   `json:"sink_tuples"`
	Shed       int64   `json:"shed"`
	Drops      int64   `json:"drops"`

	Stages   []StageReport `json:"stages,omitempty"`
	Episodes int           `json:"episodes,omitempty"`
}

// WriteFile writes the report as indented JSON.
func (r *RunReport) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Event is one structured log record. T is seconds since the log's start on
// the monotonic clock (or the virtual timestamp passed to EmitAt), so event
// order and spacing survive wall-clock adjustments; Seq is a strictly
// increasing sequence number assigning a total order even to events emitted
// concurrently in the same instant.
type Event struct {
	Seq    int64          `json:"seq"`
	T      float64        `json:"t"`
	Level  string         `json:"level"`
	Type   string         `json:"type"`
	Fields map[string]any `json:"fields,omitempty"`
}

// EventLog is a concurrency-safe structured event log with a bounded ring
// of retained events and an optional JSON-lines sink. All methods are safe
// on a nil receiver (no-ops / empty results), so instrumented code can emit
// unconditionally.
type EventLog struct {
	mu    sync.Mutex
	start time.Time
	seq   int64
	ring  []Event
	head  int
	n     int
	w     io.Writer
	werr  bool
}

// NewEventLog returns a log retaining up to capacity events (default 4096
// when capacity <= 0).
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = 4096
	}
	return &EventLog{start: time.Now(), ring: make([]Event, capacity)}
}

// SetWriter attaches a JSON-lines sink: every subsequent event is encoded
// as one JSON object per line. A write failure disables the sink (the
// in-memory ring keeps working).
func (l *EventLog) SetWriter(w io.Writer) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.w, l.werr = w, false
	l.mu.Unlock()
}

// Emit records an event stamped with the monotonic time since the log
// started (captured under the log's lock, so Seq order and timestamp order
// agree even under concurrent emitters). kv lists alternating field names
// and values.
func (l *EventLog) Emit(level, typ string, kv ...any) {
	if l == nil {
		return
	}
	l.emit(0, true, level, typ, kv)
}

// EmitAt records an event with an explicit timestamp (the simulator's
// virtual clock).
func (l *EventLog) EmitAt(t float64, level, typ string, kv ...any) {
	if l == nil {
		return
	}
	l.emit(t, false, level, typ, kv)
}

func (l *EventLog) emit(t float64, clock bool, level, typ string, kv []any) {
	var fields map[string]any
	if len(kv) > 0 {
		fields = make(map[string]any, len(kv)/2)
		for i := 0; i+1 < len(kv); i += 2 {
			fields[fmt.Sprint(kv[i])] = kv[i+1]
		}
	}
	l.mu.Lock()
	if clock {
		t = time.Since(l.start).Seconds()
	}
	l.seq++
	e := Event{Seq: l.seq, T: t, Level: level, Type: typ, Fields: fields}
	if l.n < len(l.ring) {
		l.ring[(l.head+l.n)%len(l.ring)] = e
		l.n++
	} else {
		l.ring[l.head] = e
		l.head = (l.head + 1) % len(l.ring)
	}
	// The sink write stays under the lock so the JSONL file preserves Seq
	// order; event volume is control-plane scale, not per-tuple.
	if l.w != nil && !l.werr {
		b, err := json.Marshal(&e)
		if err == nil {
			b = append(b, '\n')
			_, err = l.w.Write(b)
		}
		if err != nil {
			l.werr = true
		}
	}
	l.mu.Unlock()
}

// Events returns the retained events oldest-first.
func (l *EventLog) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, l.n)
	for i := 0; i < l.n; i++ {
		out[i] = l.ring[(l.head+i)%len(l.ring)]
	}
	return out
}

// Count returns how many retained events have the given type.
func (l *EventLog) Count(typ string) int {
	n := 0
	for _, e := range l.Events() {
		if e.Type == typ {
			n++
		}
	}
	return n
}

// Find returns the first retained event of the given type (ok=false when
// absent).
func (l *EventLog) Find(typ string) (Event, bool) {
	for _, e := range l.Events() {
		if e.Type == typ {
			return e, true
		}
	}
	return Event{}, false
}

// WriteJSON renders the retained events as a JSON array.
func (l *EventLog) WriteJSON(w io.Writer) error {
	events := l.Events()
	if events == nil {
		events = []Event{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

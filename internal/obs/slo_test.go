package obs

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseSLOSpec(t *testing.T) {
	cases := []struct {
		in      string
		want    SLOSpec
		wantErr string
	}{
		{in: "", want: SLOSpec{MaxDrops: -1}},
		{in: "p99=250ms", want: SLOSpec{P99Ms: 250, MaxDrops: -1}},
		{in: "p99=1s", want: SLOSpec{P99Ms: 1000, MaxDrops: -1}},
		{in: "p99=500us", want: SLOSpec{P99Ms: 0.5, MaxDrops: -1}},
		{in: "zero-shed", want: SLOSpec{ZeroShed: true, MaxDrops: -1}},
		{in: "max-drops=0", want: SLOSpec{MaxDrops: 0}},
		{
			in:   "p99=250ms,zero-shed,max-drops=100",
			want: SLOSpec{P99Ms: 250, ZeroShed: true, MaxDrops: 100},
		},
		{
			in:   " p99=250ms , degraded-factor=2 ",
			want: SLOSpec{P99Ms: 250, DegradedFactor: 2, MaxDrops: -1},
		},
		{in: "p99", wantErr: "needs a duration"},
		{in: "p99=fast", wantErr: "slo p99"},
		{in: "degraded-factor=0.5", wantErr: "must be a number"},
		{in: "zero-shed=yes", wantErr: "takes no value"},
		{in: "max-drops=-3", wantErr: "non-negative"},
		{in: "max-drops=many", wantErr: "non-negative"},
		{in: "latency=1ms", wantErr: "unknown slo term"},
	}
	for _, c := range cases {
		got, err := ParseSLOSpec(c.in)
		if c.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("ParseSLOSpec(%q) err = %v, want containing %q", c.in, err, c.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSLOSpec(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseSLOSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestSLOSpecStringRoundTrip(t *testing.T) {
	for _, s := range []string{"p99=250ms", "p99=250ms,zero-shed,max-drops=100", "p99=100ms,degraded-factor=2"} {
		spec, err := ParseSLOSpec(s)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		again, err := ParseSLOSpec(spec.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", spec.String(), err)
		}
		if again != spec {
			t.Errorf("round trip %q → %q → %+v, want %+v", s, spec.String(), again, spec)
		}
	}
	if got := (SLOSpec{MaxDrops: -1}).String(); got != "(empty)" {
		t.Errorf("empty spec renders %q", got)
	}
}

func TestSLOSpecEmpty(t *testing.T) {
	if !(SLOSpec{MaxDrops: -1}).Empty() {
		t.Error("gateless spec should be Empty")
	}
	for _, s := range []SLOSpec{
		{P99Ms: 1, MaxDrops: -1},
		{ZeroShed: true, MaxDrops: -1},
		{MaxDrops: 0},
	} {
		if s.Empty() {
			t.Errorf("%+v should not be Empty", s)
		}
	}
}

func TestSLOGrade(t *testing.T) {
	latency := SLOSpec{P99Ms: 100, MaxDrops: -1} // degraded band ends at 150ms
	strict := SLOSpec{P99Ms: 100, ZeroShed: true, MaxDrops: 10}
	cases := []struct {
		name        string
		spec        SLOSpec
		p99         float64
		shed, drops int64
		want        string
		reasons     int
	}{
		{name: "empty spec passes anything", spec: SLOSpec{MaxDrops: -1}, p99: 1e9, shed: 9, drops: 9, want: GradePass},
		{name: "at target", spec: latency, p99: 100, want: GradePass},
		{name: "degraded band", spec: latency, p99: 149, want: GradeDegraded, reasons: 1},
		{name: "band edge", spec: latency, p99: 150, want: GradeDegraded, reasons: 1},
		{name: "beyond band", spec: latency, p99: 151, want: GradeFail, reasons: 1},
		{name: "custom factor", spec: SLOSpec{P99Ms: 100, DegradedFactor: 3, MaxDrops: -1}, p99: 250, want: GradeDegraded, reasons: 1},
		{name: "shed fails zero-shed", spec: strict, p99: 50, shed: 1, want: GradeFail, reasons: 1},
		{name: "drops within budget", spec: strict, p99: 50, drops: 10, want: GradePass},
		{name: "drops over budget", spec: strict, p99: 50, drops: 11, want: GradeFail, reasons: 1},
		{name: "fail beats degraded", spec: strict, p99: 120, shed: 5, want: GradeFail, reasons: 2},
		{name: "everything wrong", spec: strict, p99: 1000, shed: 5, drops: 99, want: GradeFail, reasons: 3},
	}
	for _, c := range cases {
		grade, reasons := c.spec.Grade(c.p99, c.shed, c.drops)
		if grade != c.want || len(reasons) != c.reasons {
			t.Errorf("%s: Grade(%g, %d, %d) = %q %v, want %q with %d reasons",
				c.name, c.p99, c.shed, c.drops, grade, reasons, c.want, c.reasons)
		}
	}
}

func TestStageReportFrom(t *testing.T) {
	if StageReportFrom(nil) != nil {
		t.Fatal("nil set must yield nil report")
	}
	set := NewStageSet(NewRegistry())
	set.Observe(StageQueue, 0.010)
	set.Observe(StageQueue, 0.030)
	set.Observe(StageService, -1) // clamps to 0
	rep := StageReportFrom(set)
	if len(rep) != NumStages {
		t.Fatalf("report has %d stages, want %d", len(rep), NumStages)
	}
	if rep[StageQueue].Stage != "queue" || rep[StageQueue].Count != 2 {
		t.Fatalf("queue row %+v", rep[StageQueue])
	}
	if rep[StageQueue].MeanMs != 20 {
		t.Fatalf("queue mean %.3fms, want 20", rep[StageQueue].MeanMs)
	}
	if rep[StageService].Count != 1 || rep[StageService].MeanMs != 0 {
		t.Fatalf("service row %+v (negative observation must clamp)", rep[StageService])
	}
	if rep[StageTransit].Count != 0 || rep[StageTransit].P99Ms != 0 {
		t.Fatalf("idle stage row %+v", rep[StageTransit])
	}
	want := []string{"transit", "queue", "service", "outbox", "deliver"}
	var got []string
	for _, r := range rep {
		got = append(got, r.Stage)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("stage order %v, want %v", got, want)
	}
}

package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 metric. The zero value is
// ready to use; Inc/Add are lock-free and allocation-free.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for counter semantics; not enforced on
// the hot path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Store overwrites the value — for mirroring an externally accumulated
// monotone count (e.g. a node's snapshot) into the registry.
func (c *Counter) Store(n int64) { c.v.Store(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous float64 metric. The zero value is ready to use;
// Set/Value are lock-free and allocation-free.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores x.
func (g *Gauge) Set(x float64) { g.bits.Store(math.Float64bits(x)) }

// Add adds x via a CAS loop.
func (g *Gauge) Add(x float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+x)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram: counts per upper bound plus an
// overflow (+Inf) bucket, a running sum and a total count. Observe is
// lock-free and allocation-free.
type Histogram struct {
	bounds  []float64 // strictly increasing upper bounds
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

// NewHistogram builds a histogram over the given strictly increasing upper
// bounds (the +Inf bucket is implicit).
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not increasing at %d: %g <= %g", i, bounds[i], bounds[i-1]))
		}
	}
	cp := make([]float64, len(bounds))
	copy(cp, bounds)
	return &Histogram{bounds: cp, buckets: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records x into its bucket (binary search over the bounds).
func (h *Histogram) Observe(x float64) {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if x <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.buckets[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+x)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Bounds returns the bucket upper bounds (not including +Inf).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// BucketCount returns the count in bucket i (i == len(Bounds()) is +Inf).
func (h *Histogram) BucketCount(i int) int64 { return h.buckets[i].Load() }

// Quantile estimates the p-th percentile (0 ≤ p ≤ 100) by linear
// interpolation inside the containing bucket (lower edge 0 for the first
// bucket); the +Inf bucket reports the last finite bound. It returns
// (0, false) with no observations. The estimate is exact to within one
// bucket width — see the error-bound test.
func (h *Histogram) Quantile(p float64) (float64, bool) {
	total := h.count.Load()
	if total == 0 {
		return 0, false
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	target := p / 100 * float64(total)
	var cum int64
	for i := range h.buckets {
		c := h.buckets[i].Load()
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum+c) >= target {
			if i == len(h.bounds) {
				return h.bounds[len(h.bounds)-1], true
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			frac := (target - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + frac*(h.bounds[i]-lo), true
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1], true
}

// metricKind discriminates the registry families.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family groups all label variants of one metric name.
type family struct {
	name   string
	kind   metricKind
	bounds []float64 // histogram families only
	series []*labeled
	byKey  map[string]*labeled
}

type labeled struct {
	labels []string // k1,v1,k2,v2,...
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds named metrics. Registration (Counter/Gauge/Histogram
// lookups) takes a mutex and may allocate; the returned handles are stable,
// so hot paths hold a handle and never touch the registry again.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// Counter returns (registering on first use) the counter with the given
// name and label pairs ("node", "0").
func (r *Registry) Counter(name string, labels ...string) *Counter {
	e := r.lookup(name, kindCounter, nil, labels)
	return e.c
}

// Gauge returns (registering on first use) the named gauge.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	e := r.lookup(name, kindGauge, nil, labels)
	return e.g
}

// Histogram returns (registering on first use) the named histogram. bounds
// is only consulted on first registration of the family (nil uses
// DefaultLatencyBuckets).
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBuckets()
	}
	e := r.lookup(name, kindHistogram, bounds, labels)
	return e.h
}

func labelKey(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	return strings.Join(labels, "\xff")
}

func (r *Registry) lookup(name string, kind metricKind, bounds []float64, labels []string) *labeled {
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: metric %q has odd label list %v", name, labels))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, kind: kind, bounds: bounds, byKey: map[string]*labeled{}}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	key := labelKey(labels)
	if e := f.byKey[key]; e != nil {
		return e
	}
	cp := make([]string, len(labels))
	copy(cp, labels)
	e := &labeled{labels: cp}
	switch kind {
	case kindCounter:
		e.c = &Counter{}
	case kindGauge:
		e.g = &Gauge{}
	case kindHistogram:
		e.h = NewHistogram(f.bounds)
	}
	f.byKey[key] = e
	f.series = append(f.series, e)
	return e
}

// famSnapshot is an immutable copy of one family for exposition.
type famSnapshot struct {
	name   string
	kind   metricKind
	bounds []float64
	series []*labeled
}

// snapshot returns the families sorted by name with series sorted by label
// signature, for deterministic exposition. The copies are taken under the
// registry lock so concurrent registration cannot race the render.
func (r *Registry) snapshot() []famSnapshot {
	r.mu.Lock()
	fams := make([]famSnapshot, 0, len(r.families))
	for _, f := range r.families {
		cp := famSnapshot{name: f.name, kind: f.kind, bounds: f.bounds}
		cp.series = append(cp.series, f.series...)
		fams = append(fams, cp)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		sort.Slice(f.series, func(i, j int) bool {
			return labelKey(f.series[i].labels) < labelKey(f.series[j].labels)
		})
	}
	return fams
}

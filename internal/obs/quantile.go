package obs

import (
	"math"
	"sort"
)

// Quantiles returns the given percentiles (0 ≤ p ≤ 100, clamped) of xs by
// linear interpolation between closest ranks, sorting only once. Unlike
// stats.Percentile it never panics: with no samples it returns zeros and
// ok=false. The input is not modified.
func Quantiles(xs []float64, ps ...float64) ([]float64, bool) {
	out := make([]float64, len(ps))
	if len(xs) == 0 {
		return out, false
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	for i, p := range ps {
		if p < 0 {
			p = 0
		}
		if p > 100 {
			p = 100
		}
		rank := p / 100 * float64(len(sorted)-1)
		lo := int(math.Floor(rank))
		hi := int(math.Ceil(rank))
		if lo == hi {
			out[i] = sorted[lo]
			continue
		}
		frac := rank - float64(lo)
		out[i] = sorted[lo]*(1-frac) + sorted[hi]*frac
	}
	return out, true
}

// LatencySummary is the shared latency digest both the engine collector and
// the simulator report (seconds). Count is the total number of observations;
// Retained is how many samples the quantiles were estimated from (they
// differ when the producer keeps a bounded reservoir, as the engine
// collector does — Retained == Count means the digest is exact).
type LatencySummary struct {
	Count                    int64
	Retained                 int64
	Mean, P50, P95, P99, Max float64
}

// Summarize digests a latency sample set; ok is false (zero summary) with
// no samples.
func Summarize(xs []float64) (LatencySummary, bool) {
	qs, ok := Quantiles(xs, 50, 95, 99, 100)
	if !ok {
		return LatencySummary{}, false
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return LatencySummary{
		Count:    int64(len(xs)),
		Retained: int64(len(xs)),
		Mean:     sum / float64(len(xs)),
		P50:      qs[0],
		P95:      qs[1],
		P99:      qs[2],
		Max:      qs[3],
	}, true
}

// EWMA is an exponentially weighted moving average: the rate estimator R̂
// behind the live feasibility-headroom computation. The zero value is not
// usable; construct with NewEWMA.
type EWMA struct {
	alpha float64
	v     float64
	init  bool
}

// NewEWMA returns an estimator with smoothing factor alpha in (0, 1]; the
// first observation seeds the average directly.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.4
	}
	return &EWMA{alpha: alpha}
}

// Observe folds one observation.
func (e *EWMA) Observe(x float64) {
	if !e.init {
		e.v, e.init = x, true
		return
	}
	e.v += e.alpha * (x - e.v)
}

// Value returns the current average (0 before any observation).
func (e *EWMA) Value() float64 { return e.v }

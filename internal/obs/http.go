package obs

import (
	"fmt"
	"net"
	"net/http"
)

// NewHTTPHandler serves the observability endpoints:
//
//	/metrics     Prometheus text exposition of the registry
//	/series      sampled time series as JSON
//	/series.csv  the same series in long-form CSV
//	/events      the retained structured events as a JSON array
//
// Any of the three components may be nil; its endpoints then answer 404.
func NewHTTPHandler(reg *Registry, set *SeriesSet, ev *EventLog) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "rodsp observability endpoints: /metrics /series /series.csv /events")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if reg == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w) //nolint:errcheck // best-effort response body
	})
	mux.HandleFunc("/series", func(w http.ResponseWriter, r *http.Request) {
		if set == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		set.WriteJSON(w) //nolint:errcheck
	})
	mux.HandleFunc("/series.csv", func(w http.ResponseWriter, r *http.Request) {
		if set == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/csv")
		set.WriteCSV(w) //nolint:errcheck
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		if ev == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		ev.WriteJSON(w) //nolint:errcheck
	})
	return mux
}

// ServeHTTP starts an HTTP server for the observability endpoints on addr
// (":0" picks an ephemeral port). It returns the bound address and a close
// function. Serving errors after a successful bind are ignored (the server
// lives until closed).
func ServeHTTP(addr string, reg *Registry, set *SeriesSet, ev *EventLog) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: metrics listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewHTTPHandler(reg, set, ev)}
	go srv.Serve(ln) //nolint:errcheck // returns ErrServerClosed on Close
	return ln.Addr().String(), srv.Close, nil
}

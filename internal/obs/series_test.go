package obs

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"testing"
)

func TestSeriesRingWraparound(t *testing.T) {
	ss := NewSeriesSet(8)
	s := ss.Series("m", "node", "0")
	for i := 0; i < 20; i++ {
		s.Append(float64(i), float64(i*10))
	}
	if s.Len() != 8 {
		t.Fatalf("len = %d, want 8", s.Len())
	}
	ts, vs := s.Points()
	for i := range ts {
		wantT := float64(12 + i) // last 8 of 0..19
		if ts[i] != wantT || vs[i] != wantT*10 {
			t.Fatalf("point %d = (%g,%g), want (%g,%g)", i, ts[i], vs[i], wantT, wantT*10)
		}
	}
	if lt, lv, ok := s.Last(); !ok || lt != 19 || lv != 190 {
		t.Fatalf("last = (%g,%g,%v)", lt, lv, ok)
	}
	if min, ok := s.Min(); !ok || min != 120 {
		t.Fatalf("min = %g ok=%v, want 120", min, ok)
	}
}

func TestSeriesPartialFill(t *testing.T) {
	ss := NewSeriesSet(16)
	s := ss.Series("m")
	if _, _, ok := s.Last(); ok {
		t.Fatal("empty series must have no last point")
	}
	s.Append(1, 2)
	s.Append(3, 4)
	ts, vs := s.Points()
	if len(ts) != 2 || ts[0] != 1 || vs[1] != 4 {
		t.Fatalf("points = %v %v", ts, vs)
	}
}

func TestSeriesSetIdentityAndSchema(t *testing.T) {
	ss := NewSeriesSet(4)
	if ss.Series("a", "k", "v") != ss.Series("a", "k", "v") {
		t.Fatal("same identity must return the same series")
	}
	if ss.Series("a", "k", "v") == ss.Series("a", "k", "w") {
		t.Fatal("different labels must be a different series")
	}
	ss.Series("b")
	names := ss.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
	if id := ss.Series("a", "k", "v").ID(); id != `a{k="v"}` {
		t.Fatalf("id = %s", id)
	}
}

func TestSamplerPolls(t *testing.T) {
	sp := NewSampler(nil)
	x := 1.0
	sp.Probe("probe_metric", func() float64 { return x }, "node", "0")
	reg := NewRegistry()
	g := reg.Gauge("gauge_metric")
	c := reg.Counter("counter_metric")
	sp.ProbeGauge("gauge_metric", g)
	sp.ProbeCounter("counter_metric", c)

	g.Set(5)
	c.Add(3)
	sp.Sample(0.5)
	x = 2
	g.Set(6)
	sp.Sample(1.0)

	ts, vs := sp.Set().Series("probe_metric", "node", "0").Points()
	if len(ts) != 2 || vs[0] != 1 || vs[1] != 2 || ts[1] != 1.0 {
		t.Fatalf("probe series = %v %v", ts, vs)
	}
	_, gv := sp.Set().Series("gauge_metric").Points()
	if gv[0] != 5 || gv[1] != 6 {
		t.Fatalf("gauge series = %v", gv)
	}
	_, cv := sp.Set().Series("counter_metric").Points()
	if cv[0] != 3 || cv[1] != 3 {
		t.Fatalf("counter series = %v", cv)
	}
}

func TestSeriesSetJSONAndCSV(t *testing.T) {
	ss := NewSeriesSet(4)
	s := ss.Series("rodsp_node_utilization", "node", "0")
	s.Append(0, 0.5)
	s.Append(1, 0.75)

	var jb bytes.Buffer
	if err := ss.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Series []struct {
			Name   string            `json:"name"`
			Labels map[string]string `json:"labels"`
			Points [][2]float64      `json:"points"`
		} `json:"series"`
	}
	if err := json.Unmarshal(jb.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Series) != 1 || decoded.Series[0].Name != "rodsp_node_utilization" ||
		decoded.Series[0].Labels["node"] != "0" || decoded.Series[0].Points[1][1] != 0.75 {
		t.Fatalf("json = %s", jb.String())
	}

	var cb bytes.Buffer
	if err := ss.WriteCSV(&cb); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&cb).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0][0] != "time" || rows[0][1] != "series" || rows[0][2] != "value" {
		t.Fatalf("csv rows = %v", rows)
	}
	if rows[2][0] != "1" || rows[2][1] != `rodsp_node_utilization{node="0"}` || rows[2][2] != "0.75" {
		t.Fatalf("csv data row = %v", rows[2])
	}
}

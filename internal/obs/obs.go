// Package obs is the unified observability layer: a concurrency-safe
// metrics registry (counters, gauges, fixed-bucket histograms with
// allocation-free hot paths), a time-series sampler retaining ring-buffered
// series, a structured JSON-lines event log with monotonic ordering, and
// exposition in Prometheus text format, JSON and CSV.
//
// Both the TCP engine (internal/engine) and the discrete-event simulator
// (internal/sim) report through this package using the same metric names,
// so a DES run and a prototype run emit directly comparable series — in
// particular the live feasibility headroom 1 − L^n_i·R̂/C_i, the paper's
// feasibility test evaluated continuously against an EWMA of the observed
// input rates.
package obs

// Canonical metric names shared by the engine and the simulator. Keeping
// them as constants guarantees the two runtimes emit an identical series
// schema (exercised by the sim-vs-prototype cross-validation).
const (
	// MetricNodeUtilization is each node's utilization over the last sample
	// window (busy virtual-CPU seconds per wall/sim second, capped at 1).
	MetricNodeUtilization = "rodsp_node_utilization"
	// MetricNodeQueueDepth is the node's instantaneous work-queue length.
	MetricNodeQueueDepth = "rodsp_node_queue_depth"
	// MetricNodeHeadroom is the live feasibility headroom 1 − L^n_i·R̂/C_i:
	// positive while the node is inside its feasible half-space at the
	// EWMA-estimated input rates, ≤ 0 once the observed load point leaves it.
	MetricNodeHeadroom = "rodsp_node_feasibility_headroom"
	// MetricNodeInjected counts tuples accepted by the node's data plane.
	MetricNodeInjected = "rodsp_node_tuples_injected_total"
	// MetricNodeEmitted counts tuples the node's operators produced/forwarded.
	MetricNodeEmitted = "rodsp_node_tuples_emitted_total"
	// MetricSourceRate is the EWMA-smoothed input rate per source stream
	// (tuples/second) — the R̂ entering the headroom computation.
	MetricSourceRate = "rodsp_source_rate"
	// MetricSourceTuples counts tuples injected per source stream; its
	// per-window delta is the raw rate observation feeding MetricSourceRate.
	MetricSourceTuples = "rodsp_source_tuples_total"
	// MetricSinkLatency is the end-to-end sink latency histogram (seconds).
	MetricSinkLatency = "rodsp_sink_latency_seconds"
	// MetricSinkLatencyQuantile carries the sampled p50/p95/p99 series
	// (label quantile="p50"|"p95"|"p99") over the last sample window.
	MetricSinkLatencyQuantile = "rodsp_sink_latency_quantile_seconds"
	// MetricSinkTuples counts tuples that reached a sink.
	MetricSinkTuples = "rodsp_sink_tuples_total"
	// MetricNodeShed counts tuples shed at a node's bounded ingress queue.
	MetricNodeShed = "rodsp_node_tuples_shed_total"
	// MetricStreamShed counts shed tuples per node and victim stream.
	MetricStreamShed = "rodsp_stream_tuples_shed_total"
	// MetricNodeOutboxDrop counts tuples dropped by a node's per-peer
	// outboxes (overflow, injected drop faults, lost on disconnect).
	MetricNodeOutboxDrop = "rodsp_node_outbox_dropped_total"
	// MetricNodePeerReconnects counts peer links re-established after a
	// failure (the outbox backoff/reconnect cycle succeeding).
	MetricNodePeerReconnects = "rodsp_node_peer_reconnects_total"
	// MetricNodeNoRoute counts inbound tuples discarded because their
	// stream had neither a local subscription nor a relay route.
	MetricNodeNoRoute = "rodsp_node_tuples_no_route_total"
	// MetricLaneQueueDepth is one worker lane's queued + in-flight tuple
	// count (labels node, lane). Lane series are emitted only for
	// multi-lane nodes with MonitorConfig.LaneSeries enabled, so the
	// default schema stays identical between the simulator and the engine.
	MetricLaneQueueDepth = "rodsp_lane_queue_depth"
	// MetricLaneProcessed counts tuples one worker lane has processed.
	MetricLaneProcessed = "rodsp_lane_tuples_processed_total"
	// MetricLaneUtilization is one lane's windowed share of the node's
	// virtual-CPU time (busy-seconds delta per wall second, capped at 1).
	MetricLaneUtilization = "rodsp_lane_utilization"

	// MetricControllerDecisions counts elastic-controller decision cycles
	// (every evaluation of the forecast headroom, whether or not it acted).
	MetricControllerDecisions = "rodsp_controller_decisions_total"
	// MetricControllerMoves counts migrations the controller executed.
	MetricControllerMoves = "rodsp_controller_moves_total"
	// MetricControllerMoveFailures counts controller-initiated migrations
	// that aborted (the destination install was rolled back).
	MetricControllerMoveFailures = "rodsp_controller_move_failures_total"
	// MetricControllerForecastHeadroom is the minimum per-node feasibility
	// headroom 1 − L^n_i·R̂(t+H)/C_i at the controller's forecast rate
	// point — the signal the decision rule triggers on.
	MetricControllerForecastHeadroom = "rodsp_controller_forecast_headroom"
	// MetricControllerScales counts shard scale actions the controller
	// executed (skew-aware slot reassignments of a keyed stream's
	// partition table).
	MetricControllerScales = "rodsp_controller_scales_total"
	// MetricShardRate is the EWMA-smoothed routed rate (tuples/second) of
	// one keyed shard: the sum of its partition-table slots' rates, labeled
	// by the sharded parent operator ("op") and the replica index ("shard").
	MetricShardRate = "rodsp_shard_rate"

	// MetricWALRecords counts ingress batches a node's write-ahead log has
	// appended. WAL/recovery series are registered lazily, only for nodes
	// reporting an active WAL, so the default schema stays identical
	// between the simulator (no WAL) and the engine.
	MetricWALRecords = "rodsp_wal_records_total"
	// MetricWALSyncs counts fsync group commits of a node's WAL.
	MetricWALSyncs = "rodsp_wal_syncs_total"
	// MetricWALBytes counts bytes appended to a node's WAL.
	MetricWALBytes = "rodsp_wal_bytes_total"
	// MetricWALCheckpoints counts landed (drained-moment) checkpoints.
	MetricWALCheckpoints = "rodsp_wal_checkpoints_total"
	// MetricRecoveryReplayed counts tuples re-admitted from the WAL at the
	// node's last recovery.
	MetricRecoveryReplayed = "rodsp_recovery_replayed_total"
	// MetricRecoveryDedupDropped counts duplicate tuples discarded by the
	// per-stream watermarks (re-sent retained batches after a restart).
	MetricRecoveryDedupDropped = "rodsp_recovery_dedup_dropped_total"
)

// Event types emitted by the engine and the simulator.
const (
	EventDeploy         = "deploy"
	EventNodeConnect    = "node_connect"
	EventNodeDisconnect = "node_disconnect"
	EventOverloadOnset  = "overload_onset"
	EventOverloadClear  = "overload_clear"
	EventMigrateInstall = "migrate_install"
	EventMigrateStall   = "migrate_stall"
	EventMigrateRemove  = "migrate_remove"
	EventControlError   = "control_error"
	EventRelayError     = "relay_error"
	EventSpan           = "span"
	// EventShedOnset/EventShedClear bracket a load-shedding episode at a
	// node's bounded ingress queue (onset on the first shed, clearance
	// once the backlog drains to half the cap).
	EventShedOnset = "shed_onset"
	EventShedClear = "shed_clear"
	// EventPeerUp marks an outbound peer link recovering after a failure
	// previously reported as relay_error (the warn latch re-arms here).
	EventPeerUp = "peer_up"
	// EventLinkFault records an injected link fault being set or cleared.
	EventLinkFault = "link_fault"
	// EventNoRoute warns (once per stream) that inbound tuples are being
	// discarded for lack of any local subscription or relay route.
	EventNoRoute = "no_route"
	// EventInvariantViolation is emitted by the conformance harness
	// (internal/check) when a cluster-wide invariant — the tuple
	// conservation ledger, an outbox identity, or a paper-derived
	// metamorphic property — fails on a checked scenario.
	EventInvariantViolation = "invariant_violation"
	// EventMigrateAbort records a migration that failed after the
	// destination install: the install was rolled back (or the source was
	// already dead) and the plan was left at the pre-move assignment.
	EventMigrateAbort = "migrate_abort"
	// EventNodeStale marks a node whose stats became unreachable (killed or
	// partitioned): its overload latch is cleared and its gauges zeroed so
	// nothing keeps reacting to frozen last-observed values. Emitted with
	// state=stale on loss and state=fresh on recovery.
	EventNodeStale = "node_stale"
	// EventControllerDecide records one elastic-controller decision: the
	// forecast minimum headroom and the action taken (hold/migrate, with a
	// reason for holds).
	EventControllerDecide = "controller_decide"
	// EventControllerMigrate records one controller-initiated migration
	// (ok=false when the move aborted and was rolled back).
	EventControllerMigrate = "controller_migrate"
	// EventRepartition records a keyed stream's slot table being reassigned
	// at runtime (skew-aware rebalance or post-migration table push).
	EventRepartition = "repartition"
	// EventControllerScale records one controller-initiated shard scale
	// action: a skew-aware repartition of a keyed stream (ok=false when the
	// table push failed part-way; routing stays safe on mixed tables).
	EventControllerScale = "controller_scale"
	// EventCheckpoint records one landed durability checkpoint: the WAL
	// position truncated behind, and the operator/watermark counts captured.
	EventCheckpoint = "checkpoint"
	// EventRecover records a node restart that restored state from its WAL
	// directory (replayed tuple count, checkpoint presence).
	EventRecover = "recover"
	// EventWALError warns that a WAL append, sync, checkpoint write or
	// truncation failed; durable ingress stops acking until it heals.
	EventWALError = "wal_error"
	// EventNodeRestart records the control plane's restart command being
	// accepted (the supervisor recreates the node on the same address and
	// WAL directory).
	EventNodeRestart = "node_restart"
)

// Event levels.
const (
	LevelDebug = "debug"
	LevelInfo  = "info"
	LevelWarn  = "warn"
)

// DefaultLatencyBuckets are the histogram upper bounds (seconds) used for
// sink latency: roughly logarithmic from 1 ms to 60 s.
func DefaultLatencyBuckets() []float64 {
	return []float64{
		0.001, 0.002, 0.005, 0.01, 0.02, 0.05,
		0.1, 0.2, 0.5, 1, 2, 5, 10, 30, 60,
	}
}

package obs

import (
	"fmt"
	"io"
	"strings"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (text/plain; version 0.0.4), deterministically ordered
// by metric name then label signature.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.snapshot() {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, e := range f.series {
			var err error
			switch f.kind {
			case kindCounter:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, promLabels(e.labels, "", ""), e.c.Value())
			case kindGauge:
				_, err = fmt.Fprintf(w, "%s%s %g\n", f.name, promLabels(e.labels, "", ""), e.g.Value())
			case kindHistogram:
				err = writePromHistogram(w, f.name, e)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, name string, e *labeled) error {
	h := e.h
	var cum int64
	for i, b := range h.Bounds() {
		cum += h.BucketCount(i)
		le := fmt.Sprintf("%g", b)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, promLabels(e.labels, "le", le), cum); err != nil {
			return err
		}
	}
	cum += h.BucketCount(len(h.Bounds()))
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, promLabels(e.labels, "le", "+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", name, promLabels(e.labels, "", ""), h.Sum()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, promLabels(e.labels, "", ""), h.Count())
	return err
}

// promLabels renders {k="v",...}, appending one extra pair when extraK is
// non-empty; it returns "" with no labels at all.
func promLabels(labels []string, extraK, extraV string) string {
	if len(labels) == 0 && extraK == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", labels[i], labels[i+1])
	}
	if extraK != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraK, extraV)
	}
	b.WriteByte('}')
	return b.String()
}

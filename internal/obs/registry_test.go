package obs

import (
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("tuples_total", "node", "0")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	if r.Counter("tuples_total", "node", "0") != c {
		t.Fatal("re-registration must return the same handle")
	}
	if r.Counter("tuples_total", "node", "1") == c {
		t.Fatal("different labels must be a different series")
	}
	c.Store(42)
	if c.Value() != 42 {
		t.Fatalf("after Store: %d", c.Value())
	}

	g := r.Gauge("util")
	g.Set(0.5)
	g.Add(0.25)
	if v := g.Value(); v != 0.75 {
		t.Fatalf("gauge = %g", v)
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch must panic")
		}
	}()
	r.Gauge("m")
}

// TestRegistryConcurrency hammers one shared counter, one shared histogram
// and concurrent registration from many goroutines; run with -race.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("shared_total")
	h := r.Histogram("shared_seconds", []float64{0.1, 1, 10})
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(float64(i%20) / 2)
				// Concurrent registration of both existing and new series.
				r.Gauge("worker_gauge", "w", strconv.Itoa(w)).Set(float64(i))
				r.Counter("shared_total").Inc()
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != 2*workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, 2*workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
	var bucketSum int64
	for i := 0; i <= len(h.Bounds()); i++ {
		bucketSum += h.BucketCount(i)
	}
	if bucketSum != h.Count() {
		t.Fatalf("bucket sum %d != count %d", bucketSum, h.Count())
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("rodsp_sink_tuples_total").Add(7)
	r.Gauge("rodsp_node_utilization", "node", "0").Set(0.25)
	r.Gauge("rodsp_node_utilization", "node", "1").Set(0.75)
	h := r.Histogram("rodsp_sink_latency_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE rodsp_node_utilization gauge",
		`rodsp_node_utilization{node="0"} 0.25`,
		`rodsp_node_utilization{node="1"} 0.75`,
		"# TYPE rodsp_sink_tuples_total counter",
		"rodsp_sink_tuples_total 7",
		"# TYPE rodsp_sink_latency_seconds histogram",
		`rodsp_sink_latency_seconds_bucket{le="0.1"} 1`,
		`rodsp_sink_latency_seconds_bucket{le="1"} 2`,
		`rodsp_sink_latency_seconds_bucket{le="+Inf"} 3`,
		"rodsp_sink_latency_seconds_sum 5.55",
		"rodsp_sink_latency_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Deterministic: two renders agree.
	var b2 strings.Builder
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Fatal("exposition is not deterministic")
	}
}

// Hot-path overhead targets (< 100 ns/op, zero allocations): run with
// go test ./internal/obs -bench=Obs -benchmem

func BenchmarkObsCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkObsGaugeSet(b *testing.B) {
	g := NewRegistry().Gauge("bench_gauge")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

func BenchmarkObsHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) / 500)
	}
}

func BenchmarkObsCounterIncParallel(b *testing.B) {
	c := NewRegistry().Counter("bench_total")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

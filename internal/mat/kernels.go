package mat

import "fmt"

// This file holds the allocation-free kernels of the compute plane: every
// operation writes into caller-owned storage so hot loops (QMC sampling,
// incremental placement, per-tick load evaluation) allocate nothing per
// iteration. The kernels accumulate strictly in index order, so they are
// bit-identical to their allocating counterparts (MulVec, Add, Scale).

// MulVecTo computes dst = m · v without allocating. len(dst) must be
// m.Rows and len(v) must be m.Cols.
func (m *Matrix) MulVecTo(dst Vec, v Vec) {
	if len(v) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("mat: MulVecTo shape mismatch %dx%d · %d -> %d", m.Rows, m.Cols, len(v), len(dst)))
	}
	for i := 0; i < m.Rows; i++ {
		dst[i] = m.Row(i).Dot(v)
	}
}

// AddScaledRow adds a·w into row i of m element-wise, in place.
func (m *Matrix) AddScaledRow(i int, a float64, w Vec) {
	row := m.Row(i)
	if len(w) != len(row) {
		panic(fmt.Sprintf("mat: AddScaledRow length mismatch %d vs %d", len(w), len(row)))
	}
	for k := range row {
		row[k] += a * w[k]
	}
}

// AddTo computes dst = v + w without allocating. All three must share a
// length; dst may alias v or w.
func AddTo(dst, v, w Vec) {
	if len(v) != len(w) || len(dst) != len(v) {
		panic(fmt.Sprintf("mat: AddTo length mismatch %d, %d, %d", len(dst), len(v), len(w)))
	}
	for i := range dst {
		dst[i] = v[i] + w[i]
	}
}

// ScaleTo computes dst = a·v without allocating. dst may alias v.
func ScaleTo(dst Vec, a float64, v Vec) {
	if len(dst) != len(v) {
		panic(fmt.Sprintf("mat: ScaleTo length mismatch %d vs %d", len(dst), len(v)))
	}
	for i := range dst {
		dst[i] = a * v[i]
	}
}

// Scratch is a grow-only arena of float64 scratch space. A worker keeps one
// Scratch, calls Reset at the top of each task and carves zeroed vectors off
// it with Vec; after the first few tasks no call allocates. Scratch is not
// safe for concurrent use — give each goroutine its own.
type Scratch struct {
	buf  []float64
	used int
}

// Reset returns all carved vectors to the arena. Slices handed out earlier
// remain valid until the next Vec call overwrites them.
func (s *Scratch) Reset() { s.used = 0 }

// Vec carves a zeroed length-n vector off the arena, growing it only when
// capacity is exhausted.
func (s *Scratch) Vec(n int) Vec {
	if need := s.used + n; need > len(s.buf) {
		grown := make([]float64, need*2)
		copy(grown, s.buf[:s.used])
		s.buf = grown
	}
	v := Vec(s.buf[s.used : s.used+n])
	for i := range v {
		v[i] = 0
	}
	s.used += n
	return v
}

// Matrix carves a zeroed rows×cols matrix off the arena.
func (s *Scratch) Matrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mat: invalid scratch shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: s.Vec(rows * cols)}
}

// Package mat provides the small dense linear-algebra primitives used by the
// load model and the feasible-set geometry: vectors, row-major matrices, and
// the handful of norm/product operations the ROD machinery needs. It is
// deliberately tiny — no pivoting, no decompositions — because every matrix
// in this system is a load-coefficient or allocation matrix manipulated with
// element-wise arithmetic and matrix-vector products.
package mat

import (
	"fmt"
	"math"
	"strings"
)

// Vec is a dense vector of float64.
type Vec []float64

// NewVec returns a zero vector of length n.
func NewVec(n int) Vec { return make(Vec, n) }

// VecOf returns a vector with the given elements (a copy of the arguments).
func VecOf(xs ...float64) Vec {
	v := make(Vec, len(xs))
	copy(v, xs)
	return v
}

// Clone returns a deep copy of v.
func (v Vec) Clone() Vec {
	w := make(Vec, len(v))
	copy(w, v)
	return w
}

// Dot returns the inner product of v and w. It panics if lengths differ.
func (v Vec) Dot(w Vec) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("mat: Dot length mismatch %d vs %d", len(v), len(w)))
	}
	var s float64
	for i, x := range v {
		s += x * w[i]
	}
	return s
}

// Norm returns the Euclidean (L2) norm of v.
func (v Vec) Norm() float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Norm1 returns the L1 norm of v.
func (v Vec) Norm1() float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// Sum returns the sum of the elements of v.
func (v Vec) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Add returns v + w as a new vector. It panics if lengths differ.
func (v Vec) Add(w Vec) Vec {
	if len(v) != len(w) {
		panic(fmt.Sprintf("mat: Add length mismatch %d vs %d", len(v), len(w)))
	}
	u := make(Vec, len(v))
	for i := range v {
		u[i] = v[i] + w[i]
	}
	return u
}

// Sub returns v - w as a new vector. It panics if lengths differ.
func (v Vec) Sub(w Vec) Vec {
	if len(v) != len(w) {
		panic(fmt.Sprintf("mat: Sub length mismatch %d vs %d", len(v), len(w)))
	}
	u := make(Vec, len(v))
	for i := range v {
		u[i] = v[i] - w[i]
	}
	return u
}

// AddInPlace adds w into v element-wise. It panics if lengths differ.
func (v Vec) AddInPlace(w Vec) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("mat: AddInPlace length mismatch %d vs %d", len(v), len(w)))
	}
	for i := range v {
		v[i] += w[i]
	}
}

// AddScaled adds a*w into v element-wise. It panics if lengths differ.
func (v Vec) AddScaled(a float64, w Vec) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("mat: AddScaled length mismatch %d vs %d", len(v), len(w)))
	}
	for i := range v {
		v[i] += a * w[i]
	}
}

// Scale returns a*v as a new vector.
func (v Vec) Scale(a float64) Vec {
	u := make(Vec, len(v))
	for i := range v {
		u[i] = a * v[i]
	}
	return u
}

// Max returns the maximum element of v. It panics on an empty vector.
func (v Vec) Max() float64 {
	if len(v) == 0 {
		panic("mat: Max of empty vector")
	}
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum element of v. It panics on an empty vector.
func (v Vec) Min() float64 {
	if len(v) == 0 {
		panic("mat: Min of empty vector")
	}
	m := v[0]
	for _, x := range v[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// ArgMax returns the index of the maximum element (first on ties).
// It panics on an empty vector.
func (v Vec) ArgMax() int {
	if len(v) == 0 {
		panic("mat: ArgMax of empty vector")
	}
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return best
}

// ArgMin returns the index of the minimum element (first on ties).
// It panics on an empty vector.
func (v Vec) ArgMin() int {
	if len(v) == 0 {
		panic("mat: ArgMin of empty vector")
	}
	best := 0
	for i, x := range v {
		if x < v[best] {
			best = i
		}
	}
	return best
}

// AllLeq reports whether every element of v is <= the corresponding element
// of w (within an absolute tolerance eps to absorb float accumulation).
func (v Vec) AllLeq(w Vec, eps float64) bool {
	if len(v) != len(w) {
		panic(fmt.Sprintf("mat: AllLeq length mismatch %d vs %d", len(v), len(w)))
	}
	for i := range v {
		if v[i] > w[i]+eps {
			return false
		}
	}
	return true
}

// IsZero reports whether every element of v is exactly zero.
func (v Vec) IsZero() bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether v and w agree element-wise within eps.
func (v Vec) Equal(w Vec, eps float64) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if math.Abs(v[i]-w[i]) > eps {
			return false
		}
	}
	return true
}

// String formats v like "[1.0 2.5 0.0]" with compact float rendering.
func (v Vec) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, x := range v {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%g", x)
	}
	b.WriteByte(']')
	return b.String()
}

package mat

import (
	"fmt"
	"strings"
)

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// NewMatrix returns a zero matrix with the given shape.
// It panics on non-positive dimensions.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mat: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// MatrixOf builds a matrix from row slices. All rows must have equal length.
func MatrixOf(rows ...[]float64) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("mat: MatrixOf needs at least one non-empty row")
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("mat: MatrixOf ragged row %d: %d vs %d", i, len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add adds v to element (i, j).
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Row returns row i as a Vec sharing the matrix storage.
// Mutating the returned slice mutates the matrix.
func (m *Matrix) Row(i int) Vec { return Vec(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// RowCopy returns a copy of row i.
func (m *Matrix) RowCopy(i int) Vec { return m.Row(i).Clone() }

// Col returns column j as a new Vec.
func (m *Matrix) Col(j int) Vec {
	v := make(Vec, m.Rows)
	for i := 0; i < m.Rows; i++ {
		v[i] = m.At(i, j)
	}
	return v
}

// ColSums returns the vector of column sums (length Cols).
func (m *Matrix) ColSums() Vec {
	s := make(Vec, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, x := range row {
			s[j] += x
		}
	}
	return s
}

// RowSums returns the vector of row sums (length Rows).
func (m *Matrix) RowSums() Vec {
	s := make(Vec, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s[i] = m.Row(i).Sum()
	}
	return s
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MulVec returns m · v (length Rows). It panics if len(v) != Cols.
func (m *Matrix) MulVec(v Vec) Vec {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("mat: MulVec shape mismatch %dx%d · %d", m.Rows, m.Cols, len(v)))
	}
	out := make(Vec, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Row(i).Dot(v)
	}
	return out
}

// Mul returns m · b. It panics if m.Cols != b.Rows.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("mat: Mul shape mismatch %dx%d · %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		mi := m.Row(i)
		oi := out.Row(i)
		for k, a := range mi {
			if a == 0 {
				continue
			}
			bk := b.Row(k)
			for j, x := range bk {
				oi[j] += a * x
			}
		}
	}
	return out
}

// Transpose returns the transpose of m as a new matrix.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// ScaleInPlace multiplies every element by a.
func (m *Matrix) ScaleInPlace(a float64) {
	for i := range m.Data {
		m.Data[i] *= a
	}
}

// Equal reports whether m and b have the same shape and agree within eps.
func (m *Matrix) Equal(b *Matrix, eps float64) bool {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return false
	}
	return Vec(m.Data).Equal(Vec(b.Data), eps)
}

// String renders the matrix one row per line.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(m.Row(i).String())
	}
	return b.String()
}

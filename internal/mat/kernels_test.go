package mat

import (
	"testing"
)

func TestMulVecToMatchesMulVec(t *testing.T) {
	m := MatrixOf([]float64{1, 2, 3}, []float64{4, 5, 6})
	v := VecOf(7, 8, 9)
	want := m.MulVec(v)
	dst := NewVec(2)
	m.MulVecTo(dst, v)
	if !dst.Equal(want, 0) {
		t.Fatalf("MulVecTo = %v, want %v", dst, want)
	}
}

func TestMulVecToPanicsOnShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for shape mismatch")
		}
	}()
	NewMatrix(2, 3).MulVecTo(NewVec(2), NewVec(2))
}

func TestAddScaledRow(t *testing.T) {
	m := MatrixOf([]float64{1, 2}, []float64{3, 4})
	m.AddScaledRow(1, 2, VecOf(10, 20))
	if m.At(0, 0) != 1 || m.At(0, 1) != 2 {
		t.Fatal("row 0 must be untouched")
	}
	if m.At(1, 0) != 23 || m.At(1, 1) != 44 {
		t.Fatalf("row 1 = %v", m.Row(1))
	}
}

func TestAddToAndScaleToAlias(t *testing.T) {
	v := VecOf(1, 2, 3)
	AddTo(v, v, VecOf(10, 10, 10)) // dst aliases v
	if !v.Equal(VecOf(11, 12, 13), 0) {
		t.Fatalf("AddTo in place = %v", v)
	}
	ScaleTo(v, 2, v)
	if !v.Equal(VecOf(22, 24, 26), 0) {
		t.Fatalf("ScaleTo in place = %v", v)
	}
}

func TestScratchReuseIsAllocationFree(t *testing.T) {
	var s Scratch
	// Warm the arena, then assert steady-state carving allocates nothing.
	s.Vec(64)
	s.Reset()
	allocs := testing.AllocsPerRun(100, func() {
		s.Reset()
		a := s.Vec(16)
		b := s.Vec(16)
		for i := range a {
			a[i] = float64(i)
		}
		AddTo(b, a, a)
	})
	if allocs != 0 {
		t.Fatalf("steady-state scratch carving allocated %v times per run", allocs)
	}
}

func TestScratchVectorsAreZeroedAndDisjoint(t *testing.T) {
	var s Scratch
	a := s.Vec(4)
	for i := range a {
		a[i] = 9
	}
	b := s.Vec(4)
	for i := range b {
		if b[i] != 0 {
			t.Fatal("carved vector must be zeroed")
		}
	}
	b[0] = 5
	if a[0] != 9 {
		t.Fatal("carved vectors must not overlap")
	}
	s.Reset()
	c := s.Vec(4)
	if c[0] != 0 {
		t.Fatal("Reset must hand back zeroed storage")
	}
}

func TestScratchMatrix(t *testing.T) {
	var s Scratch
	m := s.Matrix(3, 2)
	if m.Rows != 3 || m.Cols != 2 || len(m.Data) != 6 {
		t.Fatalf("scratch matrix shape %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	m.Set(2, 1, 7)
	if m.At(2, 1) != 7 {
		t.Fatal("scratch matrix must be writable")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid shape")
		}
	}()
	s.Matrix(0, 3)
}

func TestAddScaledRowPanicsOnLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for length mismatch")
		}
	}()
	NewMatrix(2, 3).AddScaledRow(0, 1, NewVec(2))
}

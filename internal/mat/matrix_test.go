package mat

import (
	"math/rand"
	"testing"
)

func TestMatrixOfAndAccessors(t *testing.T) {
	m := MatrixOf([]float64{1, 2}, []float64{3, 4}, []float64{5, 6})
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("shape %dx%d", m.Rows, m.Cols)
	}
	if m.At(1, 0) != 3 || m.At(2, 1) != 6 {
		t.Fatalf("At wrong: %v", m)
	}
	m.Set(0, 1, 9)
	if m.At(0, 1) != 9 {
		t.Fatal("Set failed")
	}
	m.Add(0, 1, 1)
	if m.At(0, 1) != 10 {
		t.Fatal("Add failed")
	}
}

func TestMatrixOfRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	MatrixOf([]float64{1, 2}, []float64{1})
}

func TestNewMatrixInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on zero rows")
		}
	}()
	NewMatrix(0, 3)
}

func TestRowSharesStorage(t *testing.T) {
	m := MatrixOf([]float64{1, 2}, []float64{3, 4})
	r := m.Row(0)
	r[0] = 42
	if m.At(0, 0) != 42 {
		t.Fatal("Row must share storage")
	}
	rc := m.RowCopy(1)
	rc[0] = -1
	if m.At(1, 0) != 3 {
		t.Fatal("RowCopy must not share storage")
	}
}

func TestColAndSums(t *testing.T) {
	m := MatrixOf([]float64{1, 2}, []float64{3, 4})
	if got := m.Col(1); !got.Equal(VecOf(2, 4), 0) {
		t.Fatalf("Col = %v", got)
	}
	if got := m.ColSums(); !got.Equal(VecOf(4, 6), 0) {
		t.Fatalf("ColSums = %v", got)
	}
	if got := m.RowSums(); !got.Equal(VecOf(3, 7), 0) {
		t.Fatalf("RowSums = %v", got)
	}
}

func TestMulVec(t *testing.T) {
	m := MatrixOf([]float64{1, 2}, []float64{3, 4})
	if got := m.MulVec(VecOf(1, 1)); !got.Equal(VecOf(3, 7), 0) {
		t.Fatalf("MulVec = %v", got)
	}
}

func TestMul(t *testing.T) {
	a := MatrixOf([]float64{1, 2}, []float64{3, 4})
	b := MatrixOf([]float64{5, 6}, []float64{7, 8})
	got := a.Mul(b)
	want := MatrixOf([]float64{19, 22}, []float64{43, 50})
	if !got.Equal(want, 0) {
		t.Fatalf("Mul =\n%v\nwant\n%v", got, want)
	}
}

func TestMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape panic")
		}
	}()
	NewMatrix(2, 3).Mul(NewMatrix(2, 3))
}

func TestTranspose(t *testing.T) {
	m := MatrixOf([]float64{1, 2, 3}, []float64{4, 5, 6})
	tr := m.Transpose()
	want := MatrixOf([]float64{1, 4}, []float64{2, 5}, []float64{3, 6})
	if !tr.Equal(want, 0) {
		t.Fatalf("Transpose =\n%v", tr)
	}
	// Double transpose is identity.
	if !tr.Transpose().Equal(m, 0) {
		t.Fatal("transpose twice should be identity")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := MatrixOf([]float64{1, 2}, []float64{3, 4})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must deep-copy")
	}
}

func TestScaleInPlace(t *testing.T) {
	m := MatrixOf([]float64{1, 2}, []float64{3, 4})
	m.ScaleInPlace(2)
	if !m.Equal(MatrixOf([]float64{2, 4}, []float64{6, 8}), 0) {
		t.Fatalf("ScaleInPlace = %v", m)
	}
}

func TestEqualShapeMismatch(t *testing.T) {
	if NewMatrix(2, 2).Equal(NewMatrix(2, 3), 0) {
		t.Fatal("different shapes must not be Equal")
	}
}

func TestString(t *testing.T) {
	m := MatrixOf([]float64{1, 2}, []float64{3, 4})
	want := "[1 2]\n[3 4]"
	if got := m.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

// Property: (A·B)·v == A·(B·v) on random matrices.
func TestMulAssociativityWithVec(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for k := 0; k < 50; k++ {
		n, m, p := 1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(5)
		a := randMat(rng, n, m)
		b := randMat(rng, m, p)
		v := NewVec(p)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		left := a.Mul(b).MulVec(v)
		right := a.MulVec(b.MulVec(v))
		if !left.Equal(right, 1e-9) {
			t.Fatalf("associativity violated: %v vs %v", left, right)
		}
	}
}

// Property: column sums are preserved by permutation-like 0/1 allocation
// matrices whose columns each sum to 1 (the allocation-matrix invariant the
// paper's constraint (1) relies on: sum_i l^n_ik == sum_j l^o_jk).
func TestAllocationPreservesColumnSums(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for k := 0; k < 50; k++ {
		n, m, d := 2+rng.Intn(4), 1+rng.Intn(10), 1+rng.Intn(4)
		a := NewMatrix(n, m) // allocation: one 1 per column
		for j := 0; j < m; j++ {
			a.Set(rng.Intn(n), j, 1)
		}
		lo := randMatNonNeg(rng, m, d)
		ln := a.Mul(lo)
		if !ln.ColSums().Equal(lo.ColSums(), 1e-9) {
			t.Fatalf("allocation changed column sums:\n%v\nvs\n%v", ln.ColSums(), lo.ColSums())
		}
	}
}

func randMat(rng *rand.Rand, r, c int) *Matrix {
	m := NewMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func randMatNonNeg(rng *rand.Rand, r, c int) *Matrix {
	m := NewMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = rng.Float64()
	}
	return m
}

package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVecOfCopies(t *testing.T) {
	xs := []float64{1, 2, 3}
	v := VecOf(xs...)
	xs[0] = 99
	if v[0] != 1 {
		t.Fatalf("VecOf must copy its arguments, got %v", v)
	}
}

func TestDot(t *testing.T) {
	v := VecOf(1, 2, 3)
	w := VecOf(4, 5, 6)
	if got := v.Dot(w); got != 32 {
		t.Fatalf("Dot = %g, want 32", got)
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	VecOf(1, 2).Dot(VecOf(1))
}

func TestNorms(t *testing.T) {
	v := VecOf(3, -4)
	if got := v.Norm(); got != 5 {
		t.Fatalf("Norm = %g, want 5", got)
	}
	if got := v.Norm1(); got != 7 {
		t.Fatalf("Norm1 = %g, want 7", got)
	}
	if got := v.Sum(); got != -1 {
		t.Fatalf("Sum = %g, want -1", got)
	}
}

func TestAddSubScale(t *testing.T) {
	v := VecOf(1, 2)
	w := VecOf(3, 5)
	if got := v.Add(w); !got.Equal(VecOf(4, 7), 0) {
		t.Fatalf("Add = %v", got)
	}
	if got := w.Sub(v); !got.Equal(VecOf(2, 3), 0) {
		t.Fatalf("Sub = %v", got)
	}
	if got := v.Scale(2); !got.Equal(VecOf(2, 4), 0) {
		t.Fatalf("Scale = %v", got)
	}
	u := v.Clone()
	u.AddInPlace(w)
	if !u.Equal(VecOf(4, 7), 0) {
		t.Fatalf("AddInPlace = %v", u)
	}
	u = v.Clone()
	u.AddScaled(10, w)
	if !u.Equal(VecOf(31, 52), 0) {
		t.Fatalf("AddScaled = %v", u)
	}
}

func TestMinMaxArg(t *testing.T) {
	v := VecOf(2, 7, -1, 7)
	if v.Max() != 7 || v.Min() != -1 {
		t.Fatalf("Max/Min wrong: %g %g", v.Max(), v.Min())
	}
	if v.ArgMax() != 1 {
		t.Fatalf("ArgMax = %d, want 1 (first on ties)", v.ArgMax())
	}
	if v.ArgMin() != 2 {
		t.Fatalf("ArgMin = %d, want 2", v.ArgMin())
	}
}

func TestAllLeq(t *testing.T) {
	if !VecOf(1, 2).AllLeq(VecOf(1, 2), 0) {
		t.Fatal("equal vectors should satisfy AllLeq")
	}
	if VecOf(1, 2.001).AllLeq(VecOf(1, 2), 1e-6) {
		t.Fatal("2.001 <= 2 should fail at eps=1e-6")
	}
	if !VecOf(1, 2.001).AllLeq(VecOf(1, 2), 0.01) {
		t.Fatal("2.001 <= 2 should pass at eps=0.01")
	}
}

func TestIsZeroEqualString(t *testing.T) {
	if !NewVec(3).IsZero() {
		t.Fatal("zero vector should be zero")
	}
	if VecOf(0, 1e-300).IsZero() {
		t.Fatal("tiny non-zero is not zero")
	}
	if got := VecOf(1, 2.5, 0).String(); got != "[1 2.5 0]" {
		t.Fatalf("String = %q", got)
	}
	if VecOf(1).Equal(VecOf(1, 2), 0) {
		t.Fatal("length mismatch must not be Equal")
	}
}

func TestEmptyPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"Max":    func() { Vec{}.Max() },
		"Min":    func() { Vec{}.Min() },
		"ArgMax": func() { Vec{}.ArgMax() },
		"ArgMin": func() { Vec{}.ArgMin() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s on empty vector should panic", name)
				}
			}()
			f()
		}()
	}
}

// Property: Cauchy-Schwarz |v·w| <= ||v||·||w||.
func TestCauchySchwarzProperty(t *testing.T) {
	f := func(a, b, c, d, e, g float64) bool {
		v := VecOf(clamp(a), clamp(b), clamp(c))
		w := VecOf(clamp(d), clamp(e), clamp(g))
		return math.Abs(v.Dot(w)) <= v.Norm()*w.Norm()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: triangle inequality for Norm.
func TestTriangleInequalityProperty(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		v := VecOf(clamp(a), clamp(b))
		w := VecOf(clamp(c), clamp(d))
		return v.Add(w).Norm() <= v.Norm()+w.Norm()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// clamp keeps quick-generated floats in a sane range and strips NaN/Inf.
func clamp(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 1e6)
}

func TestRandomDotCommutes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for k := 0; k < 100; k++ {
		n := 1 + rng.Intn(8)
		v, w := NewVec(n), NewVec(n)
		for i := range v {
			v[i] = rng.NormFloat64()
			w[i] = rng.NormFloat64()
		}
		if math.Abs(v.Dot(w)-w.Dot(v)) > 1e-12 {
			t.Fatalf("dot not commutative for %v, %v", v, w)
		}
	}
}

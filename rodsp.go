// Package rodsp is a Go implementation of Resilient Operator Distribution
// (ROD) — the static operator-placement algorithm of Xing, Hwang,
// Çetintemel and Zdonik, "Providing Resiliency to Load Variations in
// Distributed Stream Processing" (VLDB 2006) — together with everything
// needed to use and evaluate it: a query-graph model with nonlinear-load
// linearization, feasible-set geometry and Quasi-Monte-Carlo measurement,
// the paper's four baseline load distributors, operator clustering, a
// discrete-event simulator, and a small TCP-based distributed stream engine.
//
// The core idea: model every operator's CPU load as a linear function of
// the system input stream rates; a placement then makes each node a
// half-space constraint on the rate space, and the intersection — the
// feasible set — is the set of input-rate combinations the cluster can
// sustain. ROD places operators to maximize the feasible set's size rather
// than to balance one observed load point, making the system resilient to
// unpredictable and bursty load without operator migration.
//
// Quick start:
//
//	b := rodsp.NewBuilder()
//	in := b.Input("packets")
//	f := b.Filter("syn", 0.0002, 0.3, in)
//	b.Aggregate("count", 0.0004, 0.05, 5, f)
//	g, err := b.Build()
//	// place on 4 unit-capacity nodes
//	plan, report, lm, err := rodsp.Place(g, []float64{1, 1, 1, 1}, rodsp.Config{})
//	ratio, err := rodsp.FeasibleRatio(plan, lm, []float64{1, 1, 1, 1}, 4000)
package rodsp

import (
	"rodsp/internal/cluster"
	"rodsp/internal/core"
	"rodsp/internal/engine"
	"rodsp/internal/feasible"
	"rodsp/internal/mat"
	"rodsp/internal/obs"
	"rodsp/internal/par"
	"rodsp/internal/placement"
	"rodsp/internal/query"
	"rodsp/internal/sim"
	"rodsp/internal/trace"
)

// Graph building (see the Builder methods: Input, Filter, Map, Union,
// Aggregate, Join, Delay).
type (
	// Graph is an acyclic continuous-query data-flow graph.
	Graph = query.Graph
	// Builder assembles Graphs; obtain one with NewBuilder.
	Builder = query.Builder
	// Operator is one continuous-query operator (the allocation unit).
	Operator = query.Operator
	// Stream is a data arc between operators or from a system input.
	Stream = query.Stream
	// StreamID identifies a stream within its graph.
	StreamID = query.StreamID
	// OpID identifies an operator within its graph.
	OpID = query.OpID
	// LoadModel is the linearized load model L^o of a graph.
	LoadModel = query.LoadModel

	// Plan assigns every operator to a node.
	Plan = placement.Plan
	// Config tunes a ROD run (lower bounds, Class-I selector, seed).
	Config = core.Config
	// Report describes the decisions and final geometry of a ROD run.
	Report = core.Report
	// Selector picks among Class I candidate nodes.
	Selector = core.Selector
	// Ordering selects the phase-1 operator order (ablation support).
	Ordering = core.Ordering

	// Trace is an input-rate time series driving simulations and the engine.
	Trace = trace.Trace

	// SimConfig configures the discrete-event simulator.
	SimConfig = sim.Config
	// SimResult reports simulator latency/utilization measurements.
	SimResult = sim.Result

	// EngineCluster is an in-process distributed engine: real nodes on
	// localhost TCP with virtual CPU capacities, plus a latency collector.
	// Its MoveOperator method performs live migration with a configurable
	// state-transfer stall.
	EngineCluster = engine.Cluster
	// EngineSource injects tuples for one input stream at trace-driven rates.
	EngineSource = engine.SourceDriver
	// EngineNodeStats is a node's metrics snapshot.
	EngineNodeStats = engine.NodeStats
	// EngineNodeConfig tunes a node's data plane: ingress queue bound and
	// shed policy, per-peer outbox capacity, reconnect backoff and timeouts.
	EngineNodeConfig = engine.NodeConfig
	// EngineShedPolicy selects what a full ingress queue sheds
	// (drop-newest or drop-oldest).
	EngineShedPolicy = engine.ShedPolicy
	// EngineLinkFault describes an injected outbound-link fault (sever,
	// drop, or delay) for resilience testing.
	EngineLinkFault = engine.LinkFault
	// EngineFaultSpec is the control-plane fault-injection command: link
	// faults by peer address, or killing the node outright.
	EngineFaultSpec = engine.FaultSpec

	// RebalanceConfig turns the simulator into a dynamic-redistribution
	// system (the paper's contrast case): periodic statistics windows, a
	// move policy, and a per-move migration stall.
	RebalanceConfig = sim.RebalanceConfig
	// RebalancePolicy decides the moves of one rebalancing round.
	RebalancePolicy = sim.Policy
	// LLFRebalancePolicy reactively moves load from the hottest node to the
	// coldest.
	LLFRebalancePolicy = sim.LLFPolicy
	// CorrelationRebalancePolicy prefers moving operators whose load history
	// correlates with their node's.
	CorrelationRebalancePolicy = sim.CorrelationPolicy

	// MetricsRegistry is the concurrency-safe counter/gauge/histogram
	// registry shared by the engine monitor and the simulator observer.
	MetricsRegistry = obs.Registry
	// SeriesSet holds the ring-buffered time series the sampler fills.
	SeriesSet = obs.SeriesSet
	// EventLog records structured engine/simulator events (deploys,
	// migrations, overload onset and clearance, control errors).
	EventLog = obs.EventLog
	// MonitorConfig configures the engine's live observability loop,
	// including the load model used for feasibility headroom.
	MonitorConfig = engine.MonitorConfig
	// Monitor is the running engine observability loop; see
	// EngineCluster.StartMonitor.
	Monitor = engine.Monitor
	// ControllerConfig tunes the elastic placement controller (decision
	// interval, forecast horizon, migration budget, hysteresis, cooldown).
	ControllerConfig = engine.ControllerConfig
	// Controller is the running closed-loop elastic placement controller;
	// see EngineCluster.StartController.
	Controller = engine.Controller
	// SimObsConfig enables the simulator's virtual-time observer, which
	// emits the same metric schema as the engine monitor.
	SimObsConfig = sim.ObsConfig
	// LatencySummary is the shared latency digest (count, mean, quantiles).
	LatencySummary = obs.LatencySummary
)

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewEventLog returns an event log retaining up to capacity events
// (0 = default retention).
func NewEventLog(capacity int) *EventLog { return obs.NewEventLog(capacity) }

// ServeObservability serves /metrics (Prometheus text), /series (JSON),
// /series.csv and /events on addr. Any of reg, set, ev may be nil; the
// returned close function shuts the server down.
func ServeObservability(addr string, reg *MetricsRegistry, set *SeriesSet, ev *EventLog) (bound string, closeFn func() error, err error) {
	return obs.ServeHTTP(addr, reg, set, ev)
}

// Class-I selectors (Config.Selector).
const (
	// SelectRandom is the paper's formulation: a random Class I node.
	SelectRandom = core.SelectRandom
	// SelectMaxPlaneDistance is the deterministic paper-faithful choice.
	SelectMaxPlaneDistance = core.SelectMaxPlaneDistance
	// SelectMinConnections minimizes new inter-node streams (needs Config.Graph).
	SelectMinConnections = core.SelectMinConnections
	// SelectAxisBalance is this repository's overshoot-penalized refinement.
	SelectAxisBalance = core.SelectAxisBalance

	// OrderNormDescending is the paper's phase-1 order (the default).
	OrderNormDescending = core.OrderNormDescending
	// OrderNormAscending and OrderRandom exist for the ordering ablation.
	OrderNormAscending = core.OrderNormAscending
	// OrderRandom shuffles the phase-1 order (seeded).
	OrderRandom = core.OrderRandom
)

// SetWorkers sets the process-wide worker count of the placement/evaluation
// compute plane — chunked QMC integration, the concurrent PlaceBest
// portfolio, and the bench trial-runner all fan out through it. n <= 0
// resets to the default (GOMAXPROCS). Every parallel path is deterministic:
// results are bit-identical for any worker count.
func SetWorkers(n int) { par.SetWorkers(n) }

// Workers returns the effective compute-plane worker count.
func Workers() int { return par.Workers() }

// NewBuilder returns an empty query-graph builder.
func NewBuilder() *Builder { return query.NewBuilder() }

// Place runs ROD over a query graph: it builds the (linearized) load model
// and greedily assigns operators to the given nodes (capacities are CPU
// seconds of work per second).
func Place(g *Graph, capacities []float64, cfg Config) (*Plan, *Report, *LoadModel, error) {
	return core.PlaceGraph(g, mat.Vec(capacities), cfg)
}

// PlaceBest runs the two-variant ROD portfolio (the paper's Class II rule
// and the axis-balance refinement) and keeps the plan with the larger
// QMC-estimated feasible set. samples <= 0 uses a sensible default.
func PlaceBest(g *Graph, capacities []float64, cfg Config, samples int) (*Plan, *Report, *LoadModel, error) {
	lm, err := query.BuildLoadModel(g)
	if err != nil {
		return nil, nil, nil, err
	}
	if cfg.Graph == nil {
		cfg.Graph = g
	}
	plan, report, err := core.PlaceBest(lm.Coef, mat.Vec(capacities), cfg, samples)
	if err != nil {
		return nil, nil, nil, err
	}
	return plan, report, lm, nil
}

// FeasibleRatio measures a plan's feasible-set size as a fraction of the
// ideal feasible set (Theorem 1) by Quasi-Monte-Carlo integration (exact
// polygon clipping when the model has two variables).
func FeasibleRatio(plan *Plan, lm *LoadModel, capacities []float64, samples int) (float64, error) {
	return placement.Evaluate(plan, lm.Coef, mat.Vec(capacities), samples)
}

// FeasibleRatioFrom is FeasibleRatio over the restricted workload set
// {R ≥ lowerBound} (Section 6.1).
func FeasibleRatioFrom(plan *Plan, lm *LoadModel, capacities, lowerBound []float64, samples int) (float64, error) {
	return placement.EvaluateFrom(plan, lm.Coef, mat.Vec(capacities), mat.Vec(lowerBound), samples)
}

// FeasibleAt reports whether the system is feasible (no node overloaded) at
// the given input rates under a plan.
func FeasibleAt(plan *Plan, lm *LoadModel, capacities, rates []float64) (bool, error) {
	x, err := lm.ResolveVars(mat.Vec(rates))
	if err != nil {
		return false, err
	}
	sys := feasible.System{Ln: plan.NodeCoef(lm.Coef), C: mat.Vec(capacities)}
	return sys.FeasibleAt(x), nil
}

// Simulate runs the discrete-event simulator.
func Simulate(cfg SimConfig) (*SimResult, error) { return sim.Run(cfg) }

// Baselines from the paper's evaluation (Section 7.2), exposed for
// comparisons.

// PlaceLLF is Largest-Load-First load balancing at the given average rates.
func PlaceLLF(lm *LoadModel, capacities, avgRates []float64) (*Plan, error) {
	return placement.LLF(lm.Coef, mat.Vec(capacities), mat.Vec(avgRates))
}

// PlaceConnected is the Connected-Load-Balancing baseline.
func PlaceConnected(g *Graph, lm *LoadModel, capacities, avgRates []float64) (*Plan, error) {
	return placement.Connected(g, lm.Coef, mat.Vec(capacities), mat.Vec(avgRates))
}

// PlaceRandom places operators uniformly with equal per-node counts.
func PlaceRandom(lm *LoadModel, n int, seed int64) *Plan {
	return placement.Random(lm.Coef.Rows, n, newRand(seed))
}

// ClusterResult describes the winning Section 6.3 clustering+placement
// combination chosen by PlaceClustered.
type ClusterResult = cluster.SweepResult

// PlaceClustered handles graphs whose streams carry per-tuple network
// transfer costs (Stream.XferCost): it sweeps the Section 6.3 clustering
// strategies and thresholds, places every clustering with ROD, and returns
// the combination with the maximum plane distance in the common
// (transfer-free) normalization. With no transfer costs it degenerates to
// plain ROD. A nil thresholds slice uses {0.5, 1, 2, 4}.
func PlaceClustered(g *Graph, capacities []float64, cfg Config, thresholds []float64) (*ClusterResult, *LoadModel, error) {
	lm, err := query.BuildLoadModel(g)
	if err != nil {
		return nil, nil, err
	}
	if thresholds == nil {
		thresholds = []float64{0.5, 1, 2, 4}
	}
	if cfg.Selector == SelectRandom {
		cfg.Selector = SelectMaxPlaneDistance // deterministic sweep comparisons
	}
	res, err := cluster.Sweep(lm, mat.Vec(capacities), cfg, thresholds)
	if err != nil {
		return nil, nil, err
	}
	return res, lm, nil
}

// NetworkCostAt returns the per-second CPU cost of cross-node communication
// under a plan at the given input rates (Section 6.3's cost model).
func NetworkCostAt(lm *LoadModel, plan *Plan, rates []float64) (float64, error) {
	x, err := lm.ResolveVars(mat.Vec(rates))
	if err != nil {
		return 0, err
	}
	return cluster.NetworkCostAt(lm, plan.NodeOf, x), nil
}

// Traces.

// NewTrace wraps a rate series (tuples/second per bin of dt seconds).
func NewTrace(name string, dt float64, rates []float64) *Trace {
	return trace.New(name, dt, rates)
}

// PresetTraces returns the bursty, self-similar PKT/TCP/HTTP stand-in
// traces (mean-1 normalized; scale with Trace.ScaleToMean).
func PresetTraces(seed int64) []*Trace { return trace.Presets(seed) }

// Engine.

// StartEngine launches an in-process distributed engine cluster: one TCP
// node per capacity entry plus a latency collector. Close it when done.
func StartEngine(capacities []float64) (*EngineCluster, error) {
	return engine.StartCluster(capacities)
}

// StartEngineConfig is StartEngine with explicit per-node data-plane
// settings (queue bounds, shed policy, outbox capacity, backoff).
func StartEngineConfig(capacities []float64, cfg EngineNodeConfig) (*EngineCluster, error) {
	return engine.StartClusterConfig(capacities, cfg)
}

// EngineInputNodes returns, per input stream, the nodes that must receive
// injected source tuples under a plan.
func EngineInputNodes(g *Graph, plan *Plan) map[StreamID][]int {
	return engine.InputNodes(g, plan)
}
